package render_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/render"
	"calgo/internal/sched"
	"calgo/internal/spec"
)

var update = flag.Bool("update", false, "rewrite golden files")

const objE history.ObjectID = "E"

// golden compares got against testdata/name, rewriting it under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/render -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func inv(t history.ThreadID, arg int64) history.Event {
	return history.Inv(t, objE, spec.MethodExchange, history.Int(arg))
}

func res(t history.ThreadID, ok bool, ret int64) history.Event {
	return history.Res(t, objE, spec.MethodExchange, history.Pair(ok, ret))
}

// satHistory: a clean swap plus a pending invocation the completion
// drops — exercises element grouping, concurrency marking and the
// dropped-op rendering in one fixture.
func satHistory() history.History {
	return history.History{
		inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3), inv(3, 7),
	}
}

// unsatHistory: a swap the search linearizes followed by a lone
// "successful" exchange that can never be matched.
func unsatHistory() history.History {
	return history.History{
		inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3), inv(3, 7), res(3, true, 9),
	}
}

func explain(t *testing.T, h history.History, wantVerdict check.Verdict) *check.Explanation {
	t.Helper()
	r, err := check.CAL(context.Background(), h, spec.NewExchanger(objE))
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != wantVerdict {
		t.Fatalf("verdict = %v, want %v", r.Verdict, wantVerdict)
	}
	if r.Explanation == nil {
		t.Fatal("no explanation on result")
	}
	return r.Explanation
}

func TestTimelineGolden(t *testing.T) {
	sat := explain(t, satHistory(), check.Sat)
	unsat := explain(t, unsatHistory(), check.Unsat)
	golden(t, "timeline_sat.txt", render.Timeline(sat, render.TimelineOptions{}))
	golden(t, "timeline_sat_ascii.txt", render.Timeline(sat, render.TimelineOptions{ASCII: true}))
	golden(t, "timeline_unsat.txt", render.Timeline(unsat, render.TimelineOptions{}))
}

func TestDOTGolden(t *testing.T) {
	sat := explain(t, satHistory(), check.Sat)
	unsat := explain(t, unsatHistory(), check.Unsat)
	for name, dot := range map[string]string{
		"dot_sat.dot":   render.DOT(sat),
		"dot_unsat.dot": render.DOT(unsat),
	} {
		if err := render.ValidateDOT(dot); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		golden(t, name, dot)
	}
	// The failing run must visibly flag the first blocked operation.
	if dot := render.DOT(unsat); !strings.Contains(dot, "color=red") {
		t.Error("unsat DOT does not highlight the blocked operation")
	}
}

func TestScheduleGolden(t *testing.T) {
	steps := []sched.Step{
		{Thread: 0, Label: "INIT"},
		{Thread: 1, Label: "XCHG"},
		{Thread: 0, Label: "DONE"},
	}
	golden(t, "schedule_timeline.txt", render.ScheduleTimeline(steps))
	dot := render.ScheduleDOT(steps)
	if err := render.ValidateDOT(dot); err != nil {
		t.Fatal(err)
	}
	golden(t, "schedule.dot", dot)
}

func TestValidateDOTRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"empty":            "",
		"not a graph":      "strict nonsense",
		"unclosed brace":   "digraph g { a -> b;",
		"stray closer":     "digraph g { } }",
		"unclosed quote":   "digraph g { a [label=\"oops]; }",
		"unclosed bracket": "digraph g { a [shape=box; }",
		"no body":          "digraph g",
	} {
		if err := render.ValidateDOT(doc); err == nil {
			t.Errorf("%s: accepted %q", name, doc)
		}
	}
	if err := render.ValidateDOT(`digraph g { a [label="esc \" quote"]; a -> b; }`); err != nil {
		t.Errorf("rejected valid document: %v", err)
	}
}

func TestReportGolden(t *testing.T) {
	unsat := explain(t, unsatHistory(), check.Unsat)
	m := obs.NewMetrics()
	m.Counter("check.states").Add(17)
	m.Gauge("check.depth.max").Set(2)
	fr := obs.NewFlightRecorder(4)
	fr.SearchStart(3)
	fr.ElementAdmit(0, 2)
	fr.SearchEnd("Unsat", 17)
	snap := m.Snapshot()
	r := &render.Report{
		Schema:    render.ReportSchema,
		Tool:      "calcheck",
		ElapsedNS: 1500000,
		Exit:      1,
		Runs: []render.Run{{
			Name:     "unsat.txt",
			Verdict:  render.VerdictWord(check.Unsat),
			Detail:   "no CA-trace matches",
			Timeline: render.Timeline(unsat, render.TimelineOptions{ASCII: true}),
			DOT:      render.DOT(unsat),
			Schedule: []sched.Step{{Thread: 0, Label: "INIT"}},
		}},
		Metrics:     &snap,
		Flight:      fr.Events(),
		FlightTotal: fr.Total(),
		Notes:       []string{"fixture report"},
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "report.json", buf.String())
	golden(t, "report.md", r.Markdown())

	// The JSON document must round-trip, including the flight events'
	// custom kind encoding.
	var back render.Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != render.ReportSchema || back.Tool != "calcheck" || back.Exit != 1 {
		t.Errorf("round-trip header = %+v", back)
	}
	if len(back.Flight) != 3 || back.Flight[0].Kind != obs.EvSearchStart || back.Flight[2].Kind != obs.EvSearchEnd {
		t.Errorf("round-trip flight = %+v", back.Flight)
	}
	if back.Flight[2].Verdict != "Unsat" {
		t.Errorf("round-trip verdict = %q", back.Flight[2].Verdict)
	}
	if len(back.Runs) != 1 || len(back.Runs[0].Schedule) != 1 || back.Runs[0].Schedule[0].Label != "INIT" {
		t.Errorf("round-trip runs = %+v", back.Runs)
	}
}

func TestVerdictWord(t *testing.T) {
	if got := render.VerdictWord(check.Sat); got != "OK" {
		t.Errorf("Sat = %q", got)
	}
	if got := render.VerdictWord(check.Unsat); got != "VIOLATION" {
		t.Errorf("Unsat = %q", got)
	}
	if got := render.VerdictWord(check.Unknown); got != "UNKNOWN" {
		t.Errorf("Unknown = %q", got)
	}
}
