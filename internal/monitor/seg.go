package monitor

// maxSeg is a fixed-size segment tree over integer positions holding one
// value per position (-1 = absent), supporting point assignment and
// "find any position in [0, hi] / [lo, n) whose value is ≥ threshold".
// Used by the stack monitor's forced-below repairs and the S3 sweep.
type maxSeg struct {
	n    int
	tree []int
}

func newMaxSeg(n int) *maxSeg {
	if n < 1 {
		n = 1
	}
	sz := 1
	for sz < n {
		sz <<= 1
	}
	t := &maxSeg{n: sz, tree: make([]int, 2*sz)}
	for i := range t.tree {
		t.tree[i] = -1
	}
	return t
}

func (t *maxSeg) update(pos, val int) {
	i := pos + t.n
	t.tree[i] = val
	for i >>= 1; i >= 1; i >>= 1 {
		l, r := t.tree[2*i], t.tree[2*i+1]
		if l > r {
			t.tree[i] = l
		} else {
			t.tree[i] = r
		}
	}
}

// findPrefixGE returns any position ≤ hi with value ≥ threshold, or -1.
func (t *maxSeg) findPrefixGE(hi, threshold int) int {
	if hi >= t.n {
		hi = t.n - 1
	}
	if hi < 0 {
		return -1
	}
	return t.find(1, 0, t.n-1, 0, hi, threshold)
}

// findSuffixGE returns any position ≥ lo with value ≥ threshold, or -1.
func (t *maxSeg) findSuffixGE(lo, threshold int) int {
	if lo < 0 {
		lo = 0
	}
	if lo >= t.n {
		return -1
	}
	return t.find(1, 0, t.n-1, lo, t.n-1, threshold)
}

func (t *maxSeg) find(node, nodeLo, nodeHi, lo, hi, threshold int) int {
	if hi < nodeLo || nodeHi < lo || t.tree[node] < threshold {
		return -1
	}
	if nodeLo == nodeHi {
		return nodeLo
	}
	mid := (nodeLo + nodeHi) / 2
	if p := t.find(2*node, nodeLo, mid, lo, hi, threshold); p >= 0 {
		return p
	}
	return t.find(2*node+1, mid+1, nodeHi, lo, hi, threshold)
}

// coverSeg is a fixed-size segment tree with lazy range-add and range-min
// over counts, used by the priority-queue monitor to ask whether an open
// window is fully covered (min count ≥ 1) by a union of closed cores.
// Positions use doubled coordinates: position 2i is the integer event
// index i, position 2i+1 the open real gap (i, i+1).
type coverSeg struct {
	n         int
	min, lazy []int
}

func newCoverSeg(n int) *coverSeg {
	if n < 1 {
		n = 1
	}
	sz := 1
	for sz < n {
		sz <<= 1
	}
	return &coverSeg{n: sz, min: make([]int, 2*sz), lazy: make([]int, 2*sz)}
}

func (t *coverSeg) push(node int) {
	if l := t.lazy[node]; l != 0 {
		for _, ch := range [2]int{2 * node, 2*node + 1} {
			t.min[ch] += l
			t.lazy[ch] += l
		}
		t.lazy[node] = 0
	}
}

// add increments every position in [lo, hi] by delta.
func (t *coverSeg) add(lo, hi, delta int) {
	if lo < 0 {
		lo = 0
	}
	if hi >= t.n {
		hi = t.n - 1
	}
	if lo > hi {
		return
	}
	t.rangeAdd(1, 0, t.n-1, lo, hi, delta)
}

func (t *coverSeg) rangeAdd(node, nodeLo, nodeHi, lo, hi, delta int) {
	if hi < nodeLo || nodeHi < lo {
		return
	}
	if lo <= nodeLo && nodeHi <= hi {
		t.min[node] += delta
		t.lazy[node] += delta
		return
	}
	t.push(node)
	mid := (nodeLo + nodeHi) / 2
	t.rangeAdd(2*node, nodeLo, mid, lo, hi, delta)
	t.rangeAdd(2*node+1, mid+1, nodeHi, lo, hi, delta)
	if t.min[2*node] < t.min[2*node+1] {
		t.min[node] = t.min[2*node]
	} else {
		t.min[node] = t.min[2*node+1]
	}
}

// rangeMin returns the minimum count over [lo, hi].
func (t *coverSeg) rangeMin(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi >= t.n {
		hi = t.n - 1
	}
	if lo > hi {
		return int(^uint(0) >> 1)
	}
	return t.queryMin(1, 0, t.n-1, lo, hi)
}

func (t *coverSeg) queryMin(node, nodeLo, nodeHi, lo, hi int) int {
	if lo <= nodeLo && nodeHi <= hi {
		return t.min[node]
	}
	t.push(node)
	mid := (nodeLo + nodeHi) / 2
	res := int(^uint(0) >> 1)
	if lo <= mid {
		res = t.queryMin(2*node, nodeLo, mid, lo, hi)
	}
	if hi > mid {
		if r := t.queryMin(2*node+1, mid+1, nodeHi, lo, hi); r < res {
			res = r
		}
	}
	return res
}
