package monitor

import (
	"fmt"
	"math/rand"
	"testing"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// runStepper feeds h event-by-event and returns the first sticky non-OK
// result, or the Finish result.
func runStepper(t *testing.T, sp spec.Spec, h history.History) StepResult {
	t.Helper()
	st, err := NewStepper(sp, 64)
	if err != nil {
		t.Fatalf("NewStepper: %v", err)
	}
	for i, ev := range h {
		if r := st.Advance(ev, i); r.Outcome != StepOK {
			return r
		}
	}
	return st.Finish()
}

// agreeWithBatch cross-validates the stepper's final outcome on a
// complete history against the batch monitor. StepInconclusive means the
// stepper punted to the general checker, so any batch outcome is
// acceptable there; every other outcome must match exactly.
func agreeWithBatch(t *testing.T, sp spec.Spec, h history.History, label string) {
	t.Helper()
	sr := runStepper(t, sp, h)
	br := Check(h, sp)
	if sr.Outcome == StepInconclusive {
		return
	}
	want := map[Outcome]StepOutcome{
		OK: StepOK, Violation: StepViolation, Ineligible: StepIneligible, Inconclusive: StepInconclusive,
	}[br.Outcome]
	if sr.Outcome != want {
		t.Fatalf("%s: stepper %s (%s at %d) but batch %s (%s)",
			label, sr.Outcome, sr.Reason, sr.AtEvent, br.Outcome, br.Reason)
	}
}

// mutateDeqFresh rewrites one successful removal-style response to return
// a value never inserted (a Q0-style defect for every collection kind).
func mutateDeqFresh(h history.History, seed int64) (history.History, bool) {
	rng := rand.New(rand.NewSource(seed))
	var idxs []int
	for i, ev := range h {
		if ev.Kind == history.Respond && ev.Ret.Kind == history.KindPair && ev.Ret.B {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return h, false
	}
	m := append(history.History(nil), h...)
	i := idxs[rng.Intn(len(idxs))]
	m[i].Ret = history.Pair(true, 1<<40+rng.Int63n(1<<20))
	return m, true
}

// mutateDeqEmpty rewrites one successful removal-style response to claim
// the object was empty.
func mutateDeqEmpty(h history.History, seed int64) (history.History, bool) {
	rng := rand.New(rand.NewSource(seed))
	var idxs []int
	for i, ev := range h {
		if ev.Kind == history.Respond && ev.Ret.Kind == history.KindPair && ev.Ret.B {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return h, false
	}
	m := append(history.History(nil), h...)
	i := idxs[rng.Intn(len(idxs))]
	m[i].Ret = history.Pair(false, 0)
	return m, true
}

// TestStepperMatchesBatch cross-validates every stepper kind against the
// batch monitor on generated histories, pristine and with injected
// defects.
func TestStepperMatchesBatch(t *testing.T) {
	kinds := []struct {
		name string
		sp   spec.Spec
		gen  func(nOps, threads int, seed int64, obj history.ObjectID) history.History
	}{
		{"queue", spec.NewQueue("q"), GenQueue},
		{"stack", spec.NewStack("s"), GenStack},
		{"set", spec.NewSet("st"), GenSet},
		{"pqueue", spec.NewPQueue("pq"), GenPQueue},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			obj := k.sp.Object()
			for seed := int64(0); seed < 25; seed++ {
				for _, threads := range []int{1, 3, 7} {
					h := k.gen(120, threads, seed, obj)
					label := fmt.Sprintf("%s seed=%d threads=%d", k.name, seed, threads)
					agreeWithBatch(t, k.sp, h, label)
					if m, ok := mutateDeqFresh(h, seed); ok {
						agreeWithBatch(t, k.sp, m, label+" fresh-value defect")
					}
					if m, ok := mutateDeqEmpty(h, seed); ok {
						agreeWithBatch(t, k.sp, m, label+" spurious-empty defect")
					}
				}
			}
		})
	}
}

// mkEvents assembles a history from (kind, thread, method, value) rows;
// negative v means unit arg / (false,0) ret, and for responses of
// insert-style methods the ret is true.
type evRow struct {
	inv    bool
	thread history.ThreadID
	method history.Method
	arg    history.Value
	ret    history.Value
}

func buildH(rows []evRow) history.History {
	h := make(history.History, 0, len(rows))
	for _, r := range rows {
		if r.inv {
			h = append(h, history.Inv(r.thread, "q", r.method, r.arg))
		} else {
			h = append(h, history.Res(r.thread, "q", r.method, r.ret))
		}
	}
	return h
}

func TestQueueStepperQ0AtExactEvent(t *testing.T) {
	// deq ▷ 5 completes before enq(5) is invoked: the violation is known
	// at the dequeue's response, event 1.
	h := buildH([]evRow{
		{inv: true, thread: 1, method: spec.MethodDeq, arg: history.Unit()},
		{thread: 1, method: spec.MethodDeq, ret: history.Pair(true, 5)},
		{inv: true, thread: 2, method: spec.MethodEnq, arg: history.Int(5)},
		{thread: 2, method: spec.MethodEnq, ret: history.Bool(true)},
	})
	st, _ := NewStepper(spec.NewQueue("q"), 0)
	r := st.Advance(h[0], 0)
	if r.Outcome != StepOK {
		t.Fatalf("event 0: %v", r)
	}
	r = st.Advance(h[1], 1)
	if r.Outcome != StepViolation || r.AtEvent != 1 {
		t.Fatalf("want violation at event 1, got %s at %d (%s)", r.Outcome, r.AtEvent, r.Reason)
	}
	// Sticky afterwards.
	if r2 := st.Advance(h[2], 2); r2 != r {
		t.Fatalf("sticky violation lost: %v", r2)
	}
	// Batch agrees on the whole history.
	if br := Check(h, spec.NewQueue("q")); br.Outcome != Violation {
		t.Fatalf("batch: %s (%s)", br.Outcome, br.Reason)
	}
}

func TestQueueStepperPendingEnqMatch(t *testing.T) {
	// deq ▷ 5 completes while enq(5) is still pending: legal (the enqueue
	// linearizes early).
	h := buildH([]evRow{
		{inv: true, thread: 1, method: spec.MethodEnq, arg: history.Int(5)},
		{inv: true, thread: 2, method: spec.MethodDeq, arg: history.Unit()},
		{thread: 2, method: spec.MethodDeq, ret: history.Pair(true, 5)},
		{thread: 1, method: spec.MethodEnq, ret: history.Bool(true)},
	})
	if r := runStepper(t, spec.NewQueue("q"), h); r.Outcome != StepOK {
		t.Fatalf("want ok, got %s (%s)", r.Outcome, r.Reason)
	}
}

func TestQueueStepperQ2AtExactEvent(t *testing.T) {
	// enq(1) before enq(2), but 2 dequeued entirely before 1's dequeue
	// starts: FIFO inversion, known at the second dequeue's response.
	h := buildH([]evRow{
		{inv: true, thread: 1, method: spec.MethodEnq, arg: history.Int(1)},
		{thread: 1, method: spec.MethodEnq, ret: history.Bool(true)},
		{inv: true, thread: 2, method: spec.MethodEnq, arg: history.Int(2)},
		{thread: 2, method: spec.MethodEnq, ret: history.Bool(true)},
		{inv: true, thread: 1, method: spec.MethodDeq, arg: history.Unit()},
		{thread: 1, method: spec.MethodDeq, ret: history.Pair(true, 2)},
		{inv: true, thread: 2, method: spec.MethodDeq, arg: history.Unit()},
		{thread: 2, method: spec.MethodDeq, ret: history.Pair(true, 1)},
	})
	st, _ := NewStepper(spec.NewQueue("q"), 0)
	var r StepResult
	for i, ev := range h {
		r = st.Advance(ev, i)
		if r.Outcome != StepOK && i < 7 {
			t.Fatalf("premature non-OK at %d: %v", i, r)
		}
	}
	if r.Outcome != StepViolation || r.AtEvent != 7 {
		t.Fatalf("want Q2 violation at event 7, got %s at %d (%s)", r.Outcome, r.AtEvent, r.Reason)
	}
}

func TestQueueStepperQ3AtFinish(t *testing.T) {
	// Value 1's enqueue completes, then value 2 is enqueued and dequeued
	// while 1 never is: FIFO forces 1 out first. Only decidable at the
	// end of the stream.
	h := buildH([]evRow{
		{inv: true, thread: 1, method: spec.MethodEnq, arg: history.Int(1)},
		{thread: 1, method: spec.MethodEnq, ret: history.Bool(true)},
		{inv: true, thread: 1, method: spec.MethodEnq, arg: history.Int(2)},
		{thread: 1, method: spec.MethodEnq, ret: history.Bool(true)},
		{inv: true, thread: 1, method: spec.MethodDeq, arg: history.Unit()},
		{thread: 1, method: spec.MethodDeq, ret: history.Pair(true, 2)},
	})
	st, _ := NewStepper(spec.NewQueue("q"), 0)
	for i, ev := range h {
		if r := st.Advance(ev, i); r.Outcome != StepOK {
			t.Fatalf("event %d: %v", i, r)
		}
	}
	if r := st.Finish(); r.Outcome != StepViolation {
		t.Fatalf("want Q3 at finish, got %s (%s)", r.Outcome, r.Reason)
	}
}

func TestQueueStepperQ4Deferred(t *testing.T) {
	// An empty dequeue overlapping a pending dequeue must not be judged
	// early: the pending dequeue later removes value 1 with dInv before
	// the empty window, so the queue really could be empty there.
	ok := buildH([]evRow{
		{inv: true, thread: 1, method: spec.MethodEnq, arg: history.Int(1)},
		{thread: 1, method: spec.MethodEnq, ret: history.Bool(true)},
		{inv: true, thread: 2, method: spec.MethodDeq, arg: history.Unit()},
		{inv: true, thread: 3, method: spec.MethodDeq, arg: history.Unit()},
		{thread: 3, method: spec.MethodDeq, ret: history.Pair(false, 0)},
		{thread: 2, method: spec.MethodDeq, ret: history.Pair(true, 1)},
	})
	if r := runStepper(t, spec.NewQueue("q"), ok); r.Outcome != StepOK {
		t.Fatalf("deferred empty wrongly judged: %s (%s)", r.Outcome, r.Reason)
	}
	if br := Check(ok, spec.NewQueue("q")); br.Outcome != OK {
		t.Fatalf("batch disagrees: %s (%s)", br.Outcome, br.Reason)
	}

	// Covered variant: value 2's enqueue completes before the empty
	// window opens and 2 is never dequeued, so the queue is provably
	// nonempty throughout the window.
	bad := buildH([]evRow{
		{inv: true, thread: 1, method: spec.MethodEnq, arg: history.Int(1)},
		{thread: 1, method: spec.MethodEnq, ret: history.Bool(true)},
		{inv: true, thread: 4, method: spec.MethodEnq, arg: history.Int(2)},
		{thread: 4, method: spec.MethodEnq, ret: history.Bool(true)},
		{inv: true, thread: 2, method: spec.MethodDeq, arg: history.Unit()},
		{inv: true, thread: 3, method: spec.MethodDeq, arg: history.Unit()},
		{thread: 3, method: spec.MethodDeq, ret: history.Pair(false, 0)},
		{thread: 2, method: spec.MethodDeq, ret: history.Pair(true, 1)},
	})
	r := runStepper(t, spec.NewQueue("q"), bad)
	if r.Outcome != StepViolation || r.AtEvent != 6 {
		t.Fatalf("want Q4 violation at event 6, got %s at %d (%s)", r.Outcome, r.AtEvent, r.Reason)
	}
	if br := Check(bad, spec.NewQueue("q")); br.Outcome != Violation {
		t.Fatalf("batch disagrees: %s (%s)", br.Outcome, br.Reason)
	}
}

func TestQueueStepperShedsDecidedState(t *testing.T) {
	// A balanced long stream must shed decided values: resident state
	// tracks the live window, not the stream length.
	st, _ := NewStepper(spec.NewQueue("q"), 0)
	idx := 0
	feed := func(ev history.Event) {
		t.Helper()
		if r := st.Advance(ev, idx); r.Outcome != StepOK {
			t.Fatalf("event %d: %s (%s)", idx, r.Outcome, r.Reason)
		}
		idx++
	}
	const n = 100_000
	for v := int64(0); v < n; v++ {
		feed(history.Inv(1, "q", spec.MethodEnq, history.Int(v)))
		feed(history.Res(1, "q", spec.MethodEnq, history.Bool(true)))
		feed(history.Inv(2, "q", spec.MethodDeq, history.Unit()))
		feed(history.Res(2, "q", spec.MethodDeq, history.Pair(true, v)))
	}
	stats := st.Stats()
	if stats.Shed == 0 {
		t.Fatal("no state shed on a fully decided stream")
	}
	if stats.Resident > 4096 {
		t.Fatalf("resident state %d not bounded (events=%d, shed=%d)", stats.Resident, stats.Events, stats.Shed)
	}
	if r := st.Finish(); r.Outcome != StepOK {
		t.Fatalf("finish: %s (%s)", r.Outcome, r.Reason)
	}
}

func TestStepperIncompleteFinishSkipsFinalChecks(t *testing.T) {
	// An unmatched value plus a *pending* dequeue: Q3 cannot be judged —
	// the pending dequeue may yet remove the unmatched value.
	h := buildH([]evRow{
		{inv: true, thread: 1, method: spec.MethodEnq, arg: history.Int(1)},
		{thread: 1, method: spec.MethodEnq, ret: history.Bool(true)},
		{inv: true, thread: 1, method: spec.MethodEnq, arg: history.Int(2)},
		{thread: 1, method: spec.MethodEnq, ret: history.Bool(true)},
		{inv: true, thread: 1, method: spec.MethodDeq, arg: history.Unit()},
		{thread: 1, method: spec.MethodDeq, ret: history.Pair(true, 2)},
		{inv: true, thread: 2, method: spec.MethodDeq, arg: history.Unit()},
	})
	st, _ := NewStepper(spec.NewQueue("q"), 0)
	for i, ev := range h {
		if r := st.Advance(ev, i); r.Outcome != StepOK {
			t.Fatalf("event %d: %v", i, r)
		}
	}
	r := st.Finish()
	if r.Outcome != StepOK || r.Reason == "" {
		t.Fatalf("want annotated OK on incomplete finish, got %s (%q)", r.Outcome, r.Reason)
	}
}
