package monitor

import (
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/spec"
)

const obj = history.ObjectID("o")

// op builds a complete operation on its own thread so arbitrary window
// overlaps stay well-formed.
func op(t int, m history.Method, arg, ret history.Value, inv, res int) history.Op {
	return history.Op{Thread: history.ThreadID(t), Object: obj, Method: m, Arg: arg, Ret: ret, InvIndex: inv, ResIndex: res}
}

func mustHistory(t *testing.T, ops []history.Op) history.History {
	t.Helper()
	h, err := history.FromOps(ops)
	if err != nil {
		t.Fatalf("FromOps: %v", err)
	}
	return h
}

func enq(t, v, inv, res int) history.Op {
	return op(t, spec.MethodEnq, history.Int(int64(v)), history.Bool(true), inv, res)
}
func deq(t, v, inv, res int) history.Op {
	return op(t, spec.MethodDeq, history.Unit(), history.Pair(true, int64(v)), inv, res)
}
func deqEmpty(t, inv, res int) history.Op {
	return op(t, spec.MethodDeq, history.Unit(), history.Pair(false, 0), inv, res)
}
func push(t, v, inv, res int) history.Op {
	return op(t, spec.MethodPush, history.Int(int64(v)), history.Bool(true), inv, res)
}
func pop(t, v, inv, res int) history.Op {
	return op(t, spec.MethodPop, history.Unit(), history.Pair(true, int64(v)), inv, res)
}
func popEmpty(t, inv, res int) history.Op {
	return op(t, spec.MethodPop, history.Unit(), history.Pair(false, 0), inv, res)
}
func ins(t, v, inv, res int) history.Op {
	return op(t, spec.MethodInsert, history.Int(int64(v)), history.Bool(true), inv, res)
}
func ext(t, v, inv, res int) history.Op {
	return op(t, spec.MethodExtractMin, history.Unit(), history.Pair(true, int64(v)), inv, res)
}
func extEmpty(t, inv, res int) history.Op {
	return op(t, spec.MethodExtractMin, history.Unit(), history.Pair(false, 0), inv, res)
}
func add(t, v int, ret bool, inv, res int) history.Op {
	return op(t, spec.MethodAdd, history.Int(int64(v)), history.Bool(ret), inv, res)
}
func rem(t, v int, ret bool, inv, res int) history.Op {
	return op(t, spec.MethodRemove, history.Int(int64(v)), history.Bool(ret), inv, res)
}
func has(t, v int, ret bool, inv, res int) history.Op {
	return op(t, spec.MethodContains, history.Int(int64(v)), history.Bool(ret), inv, res)
}

func TestMonitorVerdicts(t *testing.T) {
	qSpec := spec.NewQueue(obj)
	sSpec := spec.Stack{Obj: obj}
	setSpec := spec.NewSet(obj)
	pqSpec := spec.NewPQueue(obj)
	cases := []struct {
		name    string
		sp      spec.Spec
		ops     []history.Op
		outcome Outcome
		reason  string // substring of Result.Reason, "" = don't care
	}{
		{"queue/sequential-sat", qSpec,
			[]history.Op{enq(1, 1, 0, 1), enq(1, 2, 2, 3), deq(1, 1, 4, 5), deq(1, 2, 6, 7)}, OK, ""},
		{"queue/overlapping-enqs-sat", qSpec,
			[]history.Op{enq(1, 1, 0, 2), enq(2, 2, 1, 3), deq(1, 2, 4, 5), deq(1, 1, 6, 7)}, OK, ""},
		{"queue/q0-never-enqueued", qSpec,
			[]history.Op{enq(1, 1, 0, 1), deq(1, 5, 2, 3)}, Violation, "Q0"},
		{"queue/q1-deq-before-enq", qSpec,
			[]history.Op{deq(1, 1, 0, 1), enq(1, 1, 2, 3)}, Violation, "Q1"},
		{"queue/q2-fifo-inversion", qSpec,
			[]history.Op{enq(1, 1, 0, 1), enq(1, 2, 2, 3), deq(1, 2, 4, 5), deq(1, 1, 6, 7)}, Violation, "Q2"},
		{"queue/q3-unmatched-overtaken", qSpec,
			[]history.Op{enq(1, 1, 0, 1), enq(1, 2, 2, 3), deq(1, 2, 4, 5)}, Violation, "Q3"},
		{"queue/q4-covered-empty", qSpec,
			[]history.Op{enq(1, 1, 0, 1), deqEmpty(2, 2, 3), deq(1, 1, 4, 5)}, Violation, "Q4"},
		{"queue/empty-before-enq-sat", qSpec,
			[]history.Op{enq(1, 1, 0, 3), deqEmpty(2, 1, 2), deq(1, 1, 4, 5)}, OK, ""},
		{"queue/duplicate-value-ineligible", qSpec,
			[]history.Op{enq(1, 1, 0, 1), deq(1, 1, 2, 3), enq(1, 1, 4, 5), deq(1, 1, 6, 7)}, Ineligible, "ambiguous"},
		{"queue/pending-ineligible", qSpec,
			[]history.Op{enq(1, 1, 0, 1), {Thread: 2, Object: obj, Method: spec.MethodDeq, Arg: history.Unit(), InvIndex: 2, ResIndex: -1, Pending: true}}, Ineligible, "pending"},

		{"stack/sequential-sat", sSpec,
			[]history.Op{push(1, 1, 0, 1), push(1, 2, 2, 3), pop(1, 2, 4, 5), pop(1, 1, 6, 7)}, OK, ""},
		{"stack/s0-never-pushed", sSpec,
			[]history.Op{push(1, 1, 0, 1), pop(1, 9, 2, 3)}, Violation, "S0"},
		{"stack/s1-pop-before-push", sSpec,
			[]history.Op{pop(1, 1, 0, 1), push(1, 1, 2, 3)}, Violation, "S1"},
		{"stack/s2-covered-pop-empty", sSpec,
			[]history.Op{push(1, 1, 0, 1), popEmpty(2, 2, 3), pop(1, 1, 4, 5)}, Violation, "pop"},
		{"stack/s3-lifo-violation", sSpec,
			[]history.Op{push(1, 1, 0, 1), push(1, 2, 2, 3), pop(1, 1, 4, 5), pop(1, 2, 6, 7)}, Violation, "S3"},
		{"stack/s4-unmatched-blocks-pop", sSpec,
			[]history.Op{push(1, 1, 0, 1), push(1, 2, 2, 3), pop(1, 1, 4, 5)}, Violation, ""},
		{"stack/forced-below-sat", sSpec,
			[]history.Op{push(1, 1, 0, 3), push(2, 2, 1, 2), pop(2, 2, 4, 5), pop(1, 1, 6, 7)}, OK, ""},
		{"stack/pop-empty-between-sat", sSpec,
			[]history.Op{push(1, 1, 0, 1), pop(1, 1, 2, 3), popEmpty(1, 4, 5), push(1, 2, 6, 7), pop(1, 2, 8, 9)}, OK, ""},
		{"stack/unmatched-tail-sat", sSpec,
			[]history.Op{push(1, 1, 0, 1), pop(1, 1, 2, 3), push(1, 2, 4, 5)}, OK, ""},

		{"set/lifecycle-sat", setSpec,
			[]history.Op{add(1, 1, true, 0, 1), has(1, 1, true, 2, 3), rem(1, 1, true, 4, 5), has(1, 1, false, 6, 7)}, OK, ""},
		{"set/contains-never-added", setSpec,
			[]history.Op{has(1, 1, true, 0, 1)}, Violation, "never added"},
		{"set/add-false-alone", setSpec,
			[]history.Op{add(1, 1, false, 0, 1)}, Violation, "no other add"},
		{"set/false-inside-presence", setSpec,
			[]history.Op{add(1, 1, true, 0, 1), has(2, 1, false, 2, 3), rem(1, 1, true, 4, 5)}, Violation, ""},
		{"set/true-after-remove", setSpec,
			[]history.Op{add(1, 1, true, 0, 1), rem(1, 1, true, 2, 3), has(1, 1, true, 4, 5)}, Violation, ""},
		{"set/overlapping-false-sat", setSpec,
			[]history.Op{has(2, 1, false, 0, 5), add(1, 1, true, 2, 3)}, OK, ""},
		{"set/double-add-ineligible", setSpec,
			[]history.Op{add(1, 1, true, 0, 1), rem(1, 1, true, 2, 3), add(1, 1, true, 4, 5)}, Ineligible, "ambiguous"},

		{"pqueue/sequential-sat", pqSpec,
			[]history.Op{ins(1, 2, 0, 1), ins(1, 1, 2, 3), ext(1, 1, 4, 5), ext(1, 2, 6, 7)}, OK, ""},
		{"pqueue/p0-never-inserted", pqSpec,
			[]history.Op{ins(1, 1, 0, 1), ext(1, 9, 2, 3)}, Violation, "P0"},
		{"pqueue/p1-extract-before-insert", pqSpec,
			[]history.Op{ext(1, 1, 0, 1), ins(1, 1, 2, 3)}, Violation, "P1"},
		{"pqueue/p2-priority-inversion", pqSpec,
			[]history.Op{ins(1, 1, 0, 1), ins(1, 2, 2, 3), ext(1, 2, 4, 5), ext(1, 1, 6, 7)}, Violation, "P2"},
		{"pqueue/p2-late-small-insert-sat", pqSpec,
			[]history.Op{ins(2, 1, 0, 9), ins(1, 2, 1, 2), ext(1, 2, 3, 4), ext(1, 1, 6, 7)}, OK, ""},
		{"pqueue/p3-covered-empty", pqSpec,
			[]history.Op{ins(1, 1, 0, 1), extEmpty(2, 2, 3), ext(1, 1, 4, 5)}, Violation, "P3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := mustHistory(t, tc.ops)
			res := Check(h, tc.sp)
			if res.Outcome != tc.outcome {
				t.Fatalf("outcome = %s (reason %q), want %s", res.Outcome, res.Reason, tc.outcome)
			}
			if tc.reason != "" && !strings.Contains(res.Reason, tc.reason) {
				t.Fatalf("reason %q does not mention %q", res.Reason, tc.reason)
			}
		})
	}
}

func TestSpecKind(t *testing.T) {
	if k := SpecKind(spec.NewQueue(obj)); k != KindQueue {
		t.Fatalf("queue kind = %s", k)
	}
	if k := SpecKind(spec.Stack{Obj: obj, AllowContention: true}); k != KindNone {
		t.Fatalf("contended stack kind = %s, want none", k)
	}
	if k := SpecKind(spec.NewRegister(obj)); k != KindNone {
		t.Fatalf("register kind = %s, want none", k)
	}
}

// TestGeneratorsProduceLinearizable pins the generators' construction:
// every generated history is well-formed, complete, eligible, and
// accepted by its monitor.
func TestGeneratorsProduceLinearizable(t *testing.T) {
	gens := []struct {
		name string
		sp   spec.Spec
		gen  func(n, threads int, seed int64, obj history.ObjectID) history.History
	}{
		{"queue", spec.NewQueue(obj), GenQueue},
		{"stack", spec.Stack{Obj: obj}, GenStack},
		{"set", spec.NewSet(obj), GenSet},
		{"pqueue", spec.NewPQueue(obj), GenPQueue},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			for seed := int64(0); seed < 25; seed++ {
				n := 5 + int(seed)*7
				h := g.gen(n, 1+int(seed)%4, seed, obj)
				if !h.IsComplete() {
					t.Fatalf("seed %d: generated history is not complete", seed)
				}
				res := Check(h, g.sp)
				if res.Outcome != OK {
					t.Fatalf("seed %d: monitor outcome %s (reason %q) on a linearizable-by-construction history:\n%s",
						seed, res.Outcome, res.Reason, h)
				}
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := GenQueue(50, 3, 42, obj)
	b := GenQueue(50, 3, 42, obj)
	if a.String() != b.String() {
		t.Fatal("GenQueue is not deterministic for a fixed seed")
	}
}
