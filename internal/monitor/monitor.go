// Package monitor implements log-linear specialized linearizability
// monitors for *unambiguous* queue, stack, set and priority-queue
// histories, in the style of Lee & Mathur's decrease-and-conquer
// monitoring (arXiv:2410.04581) and the bad-pattern characterizations of
// Bouajjani, Emmi, Enea & Hamza.
//
// The general CAL decision procedure (calgo/internal/check) is
// exponential in the worst case: it searches over linearization orders.
// For *unambiguous* histories — complete histories of a single sequential
// collection object in which every value is inserted at most once — the
// search collapses: linearizability is equivalent to the absence of a
// small set of locally checkable "bad patterns" over the operations'
// invocation/response windows, decidable by sorting and sweeping in
// O(n log n) time and O(n) space, with no state-space search at all.
//
// Check classifies a history (object kind, value-unambiguity,
// completeness) and runs the matching monitor. The outcome is four-valued:
//
//   - Ineligible: the history is not in the monitor's fragment (wrong
//     spec kind, pending invocations, ambiguous values, malformed
//     shapes). The caller must decide it with the general checker.
//   - OK: the history is linearizable. Sound: the monitor either verified
//     the absence of every bad pattern (queue, set, pqueue) or constructed
//     an explicit witness schedule (stack).
//   - Violation: the history is not linearizable; Reason names the bad
//     pattern. Sound: every reported pattern is a proof of infeasibility.
//   - Inconclusive: the history is in the fragment but the monitor could
//     not decide it (only the stack monitor's greedy scheduler can punt,
//     on rare pathological interleavings). The caller must fall back to
//     the general checker.
//
// The check package's engine dispatch (check.WithEngine) routes eligible
// histories here and falls back to the memoized parallel DFS on
// Ineligible/Inconclusive, so monitors never need to be complete to be
// useful — they only need to be sound, which the cross-validation
// property tests in this package pin against the DFS on the full object
// zoo.
package monitor

import (
	"fmt"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// Kind identifies the specialized monitor a specification maps to.
type Kind uint8

const (
	// KindNone: the specification has no specialized monitor.
	KindNone Kind = iota
	// KindQueue: FIFO queue (spec.Queue).
	KindQueue
	// KindStack: LIFO stack without contention failures (spec.Stack).
	KindStack
	// KindSet: integer set (spec.Set).
	KindSet
	// KindPQueue: min-priority queue (spec.PQueue).
	KindPQueue
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindQueue:
		return "queue"
	case KindStack:
		return "stack"
	case KindSet:
		return "set"
	case KindPQueue:
		return "pqueue"
	default:
		return "none"
	}
}

// Outcome is the four-valued monitor result.
type Outcome uint8

const (
	// Ineligible: the history is outside the unambiguous fragment; use
	// the general checker.
	Ineligible Outcome = iota
	// OK: linearizable.
	OK
	// Violation: not linearizable.
	Violation
	// Inconclusive: eligible but undecided; use the general checker.
	Inconclusive
)

// String returns the outcome's name.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Violation:
		return "violation"
	case Inconclusive:
		return "inconclusive"
	default:
		return "ineligible"
	}
}

// Result reports a monitor run.
type Result struct {
	// Kind is the specialized monitor the specification maps to
	// (KindNone when the spec itself is unsupported).
	Kind Kind
	// Outcome is the four-valued verdict.
	Outcome Outcome
	// Reason explains a Violation (the bad pattern found), an Ineligible
	// classification (why the history left the fragment) or an
	// Inconclusive punt (where the scheduler got stuck). Empty on OK.
	Reason string
	// Ops is the history's operation list, extracted once during
	// classification and reusable by the caller (e.g. for explanations).
	Ops []history.Op
}

func ineligible(k Kind, ops []history.Op, format string, args ...any) Result {
	return Result{Kind: k, Outcome: Ineligible, Reason: fmt.Sprintf(format, args...), Ops: ops}
}

func violation(k Kind, ops []history.Op, format string, args ...any) Result {
	return Result{Kind: k, Outcome: Violation, Reason: fmt.Sprintf(format, args...), Ops: ops}
}

// SpecKind maps a specification to its specialized monitor. A stack spec
// with AllowContention set has no monitor: contention failures make
// push/pop return values ambiguous witnesses of object state.
func SpecKind(sp spec.Spec) Kind {
	switch s := sp.(type) {
	case spec.Queue:
		return KindQueue
	case spec.Stack:
		if s.AllowContention {
			return KindNone
		}
		return KindStack
	case spec.Set:
		return KindSet
	case spec.PQueue:
		return KindPQueue
	default:
		return KindNone
	}
}

// Check classifies h against sp and, when h lies in the unambiguous
// fragment, decides linearizability with the specialized monitor. The
// history must be well-formed (the caller's contract, as in
// check.Checker); Check never mutates h.
func Check(h history.History, sp spec.Spec) Result {
	kind := SpecKind(sp)
	if kind == KindNone {
		return ineligible(kind, nil, "specification %s has no specialized monitor", sp.Name())
	}
	ops := h.Operations()
	obj := sp.Object()
	for i := range ops {
		if ops[i].Pending {
			return ineligible(kind, ops, "history has pending invocations (monitors require complete histories)")
		}
		if ops[i].Object != obj {
			return ineligible(kind, ops, "history touches object %s, spec constrains %s", ops[i].Object, obj)
		}
	}
	switch kind {
	case KindQueue:
		return checkQueue(ops)
	case KindStack:
		return checkStack(ops)
	case KindSet:
		return checkSet(ops)
	case KindPQueue:
		return checkPQueue(ops)
	}
	return ineligible(kind, ops, "unreachable")
}
