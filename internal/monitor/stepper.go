package monitor

import (
	"fmt"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// StepOutcome is the four-valued outcome of advancing a Stepper by one
// event. It mirrors Outcome, but is reported per event: the first non-OK
// outcome is sticky.
type StepOutcome uint8

const (
	// StepOK: the event prefix seen so far passes every check run so far
	// ("Sat-so-far" — incremental steppers have checked the full prefix,
	// replay steppers the prefix through the last quiescent re-check).
	StepOK StepOutcome = iota
	// StepViolation: the prefix is not linearizable. Linearizability is
	// closed under event-prefixes (pending invocations may be dropped or
	// completed), so every extension is non-linearizable too.
	StepViolation
	// StepIneligible: the stream left the unambiguous fragment (malformed
	// shapes, ambiguous values, mismatched responses). The caller must
	// fall back to the general checker.
	StepIneligible
	// StepInconclusive: in the fragment but undecided (the stack
	// monitor's greedy scheduler can punt). The caller must fall back.
	StepInconclusive
)

// String returns the outcome's name.
func (o StepOutcome) String() string {
	switch o {
	case StepOK:
		return "ok"
	case StepViolation:
		return "violation"
	case StepIneligible:
		return "ineligible"
	default:
		return "inconclusive"
	}
}

// StepResult reports one Advance or Finish call.
type StepResult struct {
	// Outcome is the sticky four-valued verdict.
	Outcome StepOutcome
	// Reason explains any non-OK outcome (the bad pattern found, or why
	// the stream left the monitored fragment). It may also annotate an OK
	// Finish (e.g. noting that final checks were skipped on an incomplete
	// stream).
	Reason string
	// AtEvent is the stream index of the event that made the prefix bad
	// (for incremental steppers this is exact: the prefix through AtEvent
	// is non-linearizable) or at which the condition was detected (replay
	// steppers detect at quiescent re-check boundaries). -1 when OK.
	AtEvent int
}

var stepOK = StepResult{Outcome: StepOK, AtEvent: -1}

// StepStats is a point-in-time snapshot of a stepper's footprint.
type StepStats struct {
	// Events fed so far (both kinds).
	Events int
	// Ops completed (matched invoke/respond pairs).
	Ops int
	// Pending invocations currently open.
	Pending int
	// Resident records currently held (value records, log entries,
	// merged cores, retained ops). The memory bound of the stepper.
	Resident int
	// Shed counts decided records discarded to bound memory. Zero for
	// replay steppers, which retain every completed operation.
	Shed int64
	// Checks counts batch monitor re-runs (replay steppers only).
	Checks int64
	// Unchecked counts events fed since the verdict was last exact: zero
	// for incremental steppers, events since the last quiescent re-check
	// for replay steppers.
	Unchecked int
	// Incremental is true when the stepper decides event-by-event and
	// sheds decided state (the queue stepper); false for replay steppers.
	Incremental bool
}

// Stepper is the incremental advance API over the specialized monitors: a
// single-object monitor advanced event-by-event over an unbounded stream.
//
// The queue stepper is fully incremental: every event updates O(log n)
// state, violations are reported at the exact event that makes the prefix
// non-linearizable, and fully decided value records are shed so the
// resident footprint tracks the live (pending or unmatched) operations
// rather than the stream length. Shedding waives one check: a value that
// recurs after its record was shed is treated as fresh rather than
// ambiguous, so callers must feed value-unambiguous streams (the same
// contract the batch monitors already require).
//
// Stack, set and priority-queue histories have no incremental bad-pattern
// evaluation yet; their steppers retain every completed operation and
// re-run the batch monitor at quiescent cuts (no invocation pending — the
// retained prefix is then a complete history the batch monitor decides
// exactly) at least checkEvery operations apart, and again at Finish.
//
// Steppers assume the event stream is well-formed per thread (the stream
// front-end's contract) and single-object; mismatched responses are
// reported as StepIneligible, never panics.
type Stepper interface {
	// Advance feeds one event with its stream index (indices must be
	// strictly increasing; they define the real-time order). After a
	// non-OK result every further call returns the same sticky result.
	Advance(ev history.Event, idx int) StepResult
	// Finish runs the end-of-stream checks that need the final history
	// (queue Q3/Q4 residue; replay steppers re-check a complete tail).
	// If invocations are still pending the final checks are skipped and
	// the sticky prefix verdict is returned with an annotating Reason.
	// The stepper is terminal afterwards.
	Finish() StepResult
	// Stats snapshots the stepper's footprint.
	Stats() StepStats
	// Kind names the specialized monitor driving this stepper.
	Kind() Kind
}

// DefaultCheckEvery is the replay steppers' default re-check cadence, in
// completed operations.
const DefaultCheckEvery = 1024

// NewStepper builds the incremental monitor for sp. checkEvery bounds how
// often replay steppers re-run the batch monitor (<= 0 selects
// DefaultCheckEvery); the queue stepper checks every event and ignores
// it. Specs outside the monitored fragment (SpecKind == KindNone) error.
func NewStepper(sp spec.Spec, checkEvery int) (Stepper, error) {
	kind := SpecKind(sp)
	if kind == KindNone {
		return nil, fmt.Errorf("monitor: specification %s has no specialized monitor", sp.Name())
	}
	if checkEvery <= 0 {
		checkEvery = DefaultCheckEvery
	}
	if kind == KindQueue {
		return newQueueStepper(), nil
	}
	return &replayStepper{
		kind:       kind,
		checkEvery: checkEvery,
		pend:       make(map[history.ThreadID]stepPending),
	}, nil
}

// stepPending is an invocation awaiting its response.
type stepPending struct {
	method history.Method
	arg    history.Value
	inv    int
}

// replayStepper retains completed operations and re-runs the batch
// monitor at quiescent cuts: whenever no invocation is pending, the
// retained prefix is a complete history and the batch monitor's verdict
// on it is exact. Between cuts the verdict is the one from the last cut.
type replayStepper struct {
	kind       Kind
	pend       map[history.ThreadID]stepPending
	ops        []history.Op
	events     int
	lastIdx    int
	dirty      int // completed ops since the last batch re-check
	checkedAt  int // events count at the last batch re-check
	checkEvery int
	checks     int64
	done       *StepResult
}

func (r *replayStepper) Kind() Kind { return r.kind }

func (r *replayStepper) fail(o StepOutcome, at int, format string, args ...any) StepResult {
	res := StepResult{Outcome: o, Reason: fmt.Sprintf(format, args...), AtEvent: at}
	r.done = &res
	return res
}

func (r *replayStepper) Advance(ev history.Event, idx int) StepResult {
	if r.done != nil {
		return *r.done
	}
	r.events++
	r.lastIdx = idx
	switch ev.Kind {
	case history.Invoke:
		if _, dup := r.pend[ev.Thread]; dup {
			return r.fail(StepIneligible, idx, "thread %s invokes %s while an operation is pending", ev.Thread, ev.Method)
		}
		r.pend[ev.Thread] = stepPending{method: ev.Method, arg: ev.Arg, inv: idx}
	case history.Respond:
		p, ok := r.pend[ev.Thread]
		if !ok || p.method != ev.Method {
			return r.fail(StepIneligible, idx, "response %s on thread %s does not match a pending invocation", ev.Method, ev.Thread)
		}
		delete(r.pend, ev.Thread)
		r.ops = append(r.ops, history.Op{
			Thread: ev.Thread, Object: ev.Object, Method: ev.Method,
			Arg: p.arg, Ret: ev.Ret, InvIndex: p.inv, ResIndex: idx,
		})
		r.dirty++
		if len(r.pend) == 0 && r.dirty >= r.checkEvery {
			return r.recheck(idx)
		}
	default:
		return r.fail(StepIneligible, idx, "unknown event kind %d", ev.Kind)
	}
	return stepOK
}

// recheck runs the batch monitor over the retained (complete) prefix.
func (r *replayStepper) recheck(at int) StepResult {
	r.checks++
	r.dirty = 0
	r.checkedAt = r.events
	var res Result
	switch r.kind {
	case KindStack:
		res = checkStack(r.ops)
	case KindSet:
		res = checkSet(r.ops)
	case KindPQueue:
		res = checkPQueue(r.ops)
	default:
		return r.fail(StepIneligible, at, "no batch monitor for kind %s", r.kind)
	}
	switch res.Outcome {
	case OK:
		return stepOK
	case Violation:
		// The complete prefix is non-linearizable; prefix closure makes
		// this final for every extension.
		return r.fail(StepViolation, at, res.Reason)
	case Inconclusive:
		return r.fail(StepInconclusive, at, res.Reason)
	default:
		return r.fail(StepIneligible, at, res.Reason)
	}
}

func (r *replayStepper) Finish() StepResult {
	if r.done != nil {
		return *r.done
	}
	if len(r.pend) > 0 {
		res := StepResult{
			Outcome: StepOK,
			Reason:  fmt.Sprintf("%d invocations pending at end of stream; final batch re-check skipped", len(r.pend)),
			AtEvent: -1,
		}
		r.done = &res
		return res
	}
	if r.dirty > 0 || r.checks == 0 {
		res := r.recheck(r.lastIdx)
		r.done = &res
		return res
	}
	res := stepOK
	r.done = &res
	return res
}

func (r *replayStepper) Stats() StepStats {
	return StepStats{
		Events:    r.events,
		Ops:       len(r.ops),
		Pending:   len(r.pend),
		Resident:  len(r.ops) + len(r.pend),
		Checks:    r.checks,
		Unchecked: r.events - r.checkedAt,
	}
}
