package monitor

import (
	"sort"

	"calgo/internal/history"
	"calgo/internal/spec"
)

const infIdx = int(^uint(0) >> 1)

// stackVal is one value's push window (a, b) and pop window (c, d); for
// never-popped values c = d = infIdx.
type stackVal struct {
	v          int64
	a, b, c, d int
	matched    bool
	pushOp     history.Op
	popOp      history.Op
	pushed     bool
	popped     bool
}

// checkStack decides linearizability of a complete unambiguous LIFO-stack
// history. Unlike the queue monitor it is sound but not complete: it
// first rejects via proven bad patterns (S0–S5), then constructs an
// explicit witness schedule with a greedy event sweep and validates it,
// answering OK only when the witness replays. The rare histories where
// the greedy scheduler gets stuck without a certificate return
// Inconclusive, and the engine dispatch falls back to the DFS.
//
// Bad patterns (each a proof of non-linearizability):
//
//	S0  a value is popped but never pushed;
//	S1  a value is popped entirely before its push (a > d);
//	S2  a pop-empty window is covered by merged sure-presence cores
//	    [pushRes, popInv] (the stack is provably nonempty throughout);
//	S3  matched u, v with a_u ≥ b_v ∧ b_u ≤ c_v ∧ c_u ≥ d_v: every
//	    schedule pushes u while v is on the stack, yet u pops after v;
//	S4  unmatched u, matched v with a_u ≥ b_v ∧ b_u ≤ c_v: u is forced
//	    on top of v and never pops, so v cannot pop;
//	S5  matched u, unmatched v with b_u ≤ a_v ∧ c_u ≥ b_v: u is forced
//	    below v before v's window opens, and must pop only after v —
//	    which never pops — is above it.
func checkStack(ops []history.Op) Result {
	vals := make(map[int64]*stackVal, len(ops)/2)
	var empties []history.Op
	for i := range ops {
		op := &ops[i]
		switch op.Method {
		case spec.MethodPush:
			if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindBool || !op.Ret.B {
				return ineligible(KindStack, ops, "push at inv=%d is not int ▷ true", op.InvIndex)
			}
			v := op.Arg.N
			if _, dup := vals[v]; dup {
				return ineligible(KindStack, ops, "value %d pushed more than once (ambiguous history)", v)
			}
			vals[v] = &stackVal{v: v, a: op.InvIndex, b: op.ResIndex, c: infIdx, d: infIdx, pushOp: *op}
		case spec.MethodPop:
			if op.Arg.Kind != history.KindUnit || op.Ret.Kind != history.KindPair {
				return ineligible(KindStack, ops, "pop at inv=%d is not () ▷ (bool,int)", op.InvIndex)
			}
			if !op.Ret.B {
				if op.Ret.N != 0 {
					return violation(KindStack, ops, "failed pop at inv=%d returns (false,%d); the spec admits only (false,0)", op.InvIndex, op.Ret.N)
				}
				empties = append(empties, *op)
			}
		default:
			return ineligible(KindStack, ops, "unknown stack method %s", op.Method)
		}
	}
	for i := range ops {
		op := &ops[i]
		if op.Method != spec.MethodPop || !op.Ret.B {
			continue
		}
		v := op.Ret.N
		sv, pushed := vals[v]
		if !pushed {
			return violation(KindStack, ops, "S0: pop ▷ %d at inv=%d but %d is never pushed", v, op.InvIndex, v)
		}
		if sv.matched {
			return ineligible(KindStack, ops, "value %d popped more than once (ambiguous history)", v)
		}
		sv.matched = true
		sv.c, sv.d = op.InvIndex, op.ResIndex
		sv.popOp = *op
		if sv.a > op.ResIndex {
			return violation(KindStack, ops,
				"S1: pop ▷ %d completes at %d before push(%d) is invoked at %d", v, op.ResIndex, v, sv.a)
		}
	}

	// S2: pop-empty coverage by merged sure-presence cores, exactly as Q4.
	if len(empties) > 0 {
		cores := make([]core, 0, len(vals))
		for _, sv := range vals {
			if !sv.matched {
				cores = append(cores, core{s: sv.b, e: infIdx, v: sv.v})
			} else if sv.b < sv.c {
				cores = append(cores, core{s: sv.b, e: sv.c, v: sv.v})
			}
		}
		if r, bad := coveredEmpty(empties, cores); bad {
			return r.into(KindStack, ops, "pop")
		}
	}

	var matchedVals, unmatchedVals []*stackVal
	for _, sv := range vals {
		if sv.matched {
			matchedVals = append(matchedVals, sv)
		} else {
			unmatchedVals = append(unmatchedVals, sv)
		}
	}

	if r, bad := stackCertificates(ops, matchedVals, unmatchedVals); bad {
		return r
	}

	return stackSchedule(ops, vals, empties)
}

// stackCertificates sweeps for the pairwise bad patterns S3, S4, S5.
func stackCertificates(ops []history.Op, matched, unmatched []*stackVal) (Result, bool) {
	// S4: for matched v, an unmatched u with a_u ≥ b_v ∧ b_u ≤ c_v.
	// Walk v by b descending, accumulating unmatched u with a_u ≥ b_v and
	// the minimum b_u seen; fire when that minimum is ≤ c_v.
	if len(unmatched) > 0 && len(matched) > 0 {
		mv := append([]*stackVal(nil), matched...)
		sort.Slice(mv, func(i, j int) bool { return mv[i].b > mv[j].b })
		uv := append([]*stackVal(nil), unmatched...)
		sort.Slice(uv, func(i, j int) bool { return uv[i].a > uv[j].a })
		i, minB := 0, infIdx
		var minU *stackVal
		for _, v := range mv {
			for i < len(uv) && uv[i].a >= v.b {
				if uv[i].b < minB {
					minB, minU = uv[i].b, uv[i]
				}
				i++
			}
			if minU != nil && minB <= v.c {
				return violation(KindStack, ops,
					"S4: unmatched push(%d) with window (%d, %d) is forced on top of %d (pushed by %d, popped from %d) and never pops",
					minU.v, minU.a, minU.b, v.v, v.b, v.c), true
			}
		}
	}
	// S5: for unmatched v, a matched u with b_u ≤ a_v ∧ c_u ≥ b_v.
	// Walk v by a ascending, accumulating matched u with b_u ≤ a_v and the
	// maximum c_u seen; fire when that maximum is ≥ b_v.
	if len(unmatched) > 0 && len(matched) > 0 {
		mv := append([]*stackVal(nil), matched...)
		sort.Slice(mv, func(i, j int) bool { return mv[i].b < mv[j].b })
		uv := append([]*stackVal(nil), unmatched...)
		sort.Slice(uv, func(i, j int) bool { return uv[i].a < uv[j].a })
		i, maxC := 0, -1
		var maxU *stackVal
		for _, v := range uv {
			for i < len(mv) && mv[i].b <= v.a {
				if mv[i].c > maxC {
					maxC, maxU = mv[i].c, mv[i]
				}
				i++
			}
			if maxU != nil && maxC >= v.b {
				return violation(KindStack, ops,
					"S5: %d is pushed by %d, below unmatched push(%d) whose window closes at %d, yet pops only from %d",
					maxU.v, maxU.b, v.v, v.b, maxU.c), true
			}
		}
	}
	// S3: matched u, v with a_u ≥ b_v ∧ b_u ≤ c_v ∧ c_u ≥ d_v. Process v
	// by c_v ascending, inserting u (keyed by a_u, value c_u) once
	// b_u ≤ c_v, then ask for the max c_u among u with a_u ≥ b_v.
	if len(matched) > 1 {
		byC := append([]*stackVal(nil), matched...)
		sort.Slice(byC, func(i, j int) bool { return byC[i].c < byC[j].c })
		byB := append([]*stackVal(nil), matched...)
		sort.Slice(byB, func(i, j int) bool { return byB[i].b < byB[j].b })
		n := len(ops) * 2
		t := newMaxSeg(n)
		who := make([]*stackVal, n)
		i := 0
		for _, v := range byC {
			for i < len(byB) && byB[i].b <= v.c {
				t.update(byB[i].a, byB[i].c)
				who[byB[i].a] = byB[i]
				i++
			}
			if pos := t.findSuffixGE(v.b, v.d); pos >= 0 {
				u := who[pos]
				if u != v {
					return violation(KindStack, ops,
						"S3: %d (push window (%d, %d), pop window (%d, %d)) is forced on the stack above %d (push response %d, pop window (%d, %d)) yet pops after it",
						u.v, u.a, u.b, u.c, u.d, v.v, v.b, v.c, v.d), true
				}
			}
		}
	}
	return Result{}, false
}

// stackEvent tags what happens at one event index.
type stackEvent struct {
	kind stackEventKind
	val  *stackVal
	op   history.Op // for empties
}

type stackEventKind uint8

const (
	evNone stackEventKind = iota
	evPushRes
	evPopRes
	evEmptyInv
	evEmptyRes
)

type stackStuck struct{ reason string }

// stackSchedule greedily constructs a witness linearization: pushes
// happen at their response deadlines (with forced-below repairs), pops as
// soon as the top's window opens, pop-empties whenever the stack is
// empty. A completed schedule is validated by replay, so OK is sound by
// construction; any stuck state is Inconclusive (the provable stuck
// states were already rejected by S3–S5).
func stackSchedule(ops []history.Op, vals map[int64]*stackVal, empties []history.Op) Result {
	maxIdx := 0
	for i := range ops {
		if ops[i].ResIndex > maxIdx {
			maxIdx = ops[i].ResIndex
		}
	}
	events := make([]stackEvent, maxIdx+1)
	for _, sv := range vals {
		events[sv.b] = stackEvent{kind: evPushRes, val: sv}
		if sv.matched {
			events[sv.d] = stackEvent{kind: evPopRes, val: sv}
		}
	}
	for _, e := range empties {
		events[e.InvIndex] = stackEvent{kind: evEmptyInv, op: e}
		events[e.ResIndex] = stackEvent{kind: evEmptyRes, op: e}
	}

	// Unpushed values keyed by push deadline b, carrying c for the
	// forced-below query "∃ unpushed u: b_u ≤ c_v ∧ c_u ≥ d_v".
	unpushed := newMaxSeg(maxIdx + 2)
	byB := make([]*stackVal, maxIdx+2)
	for _, sv := range vals {
		cKey := sv.c
		if cKey == infIdx {
			cKey = maxIdx + 1 // still compares ≥ any d_v
		}
		unpushed.update(sv.b, cKey)
		byB[sv.b] = sv
	}

	var (
		stack    []*stackVal
		schedule = make([]history.Op, 0, len(ops))
		opened   []history.Op // undischarged, opened pop-empties
	)
	doPop := func(u *stackVal) {
		stack = stack[:len(stack)-1]
		u.popped = true
		schedule = append(schedule, u.popOp)
	}
	discharge := func() {
		for _, e := range opened {
			schedule = append(schedule, e)
		}
		opened = opened[:0]
	}
	var doPush func(v *stackVal, idx int) *stackStuck
	doPush = func(v *stackVal, idx int) *stackStuck {
		if v.pushed {
			return nil
		}
		if v.a >= idx {
			return &stackStuck{reason: "push window of a forced-below value has not opened"}
		}
		unpushed.update(v.b, -1)
		if v.matched {
			// Forced-below repairs: any unpushed u with b_u ≤ c_v that
			// cannot pop before v's pop (c_u ≥ d_v, or u unmatched) must
			// go under v now. The relation is acyclic (c_u > c_v), so the
			// recursion terminates.
			for {
				pos := unpushed.findPrefixGE(v.c, v.d)
				if pos < 0 {
					break
				}
				if st := doPush(byB[pos], idx); st != nil {
					return st
				}
			}
			// On-stack values whose pop deadline precedes v's pop window
			// must leave before v lands on top of them.
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				if !u.matched || u.d > v.c || u.c >= idx {
					break
				}
				doPop(u)
			}
		} else {
			// No matched value may sit under a never-popped one.
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				if !u.matched || u.c >= idx {
					break
				}
				doPop(u)
			}
		}
		v.pushed = true
		stack = append(stack, v)
		schedule = append(schedule, v.pushOp)
		return nil
	}

	for idx := 0; idx <= maxIdx; idx++ {
		// Eager pops: the top's window being open means popping now is
		// never worse than popping later.
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			if !u.matched || u.c >= idx {
				break
			}
			doPop(u)
		}
		if len(stack) == 0 && len(opened) > 0 {
			discharge()
		}
		ev := events[idx]
		switch ev.kind {
		case evPushRes:
			if !ev.val.pushed {
				if st := doPush(ev.val, idx); st != nil {
					return Result{Kind: KindStack, Outcome: Inconclusive, Reason: "greedy scheduler stuck at push deadline: " + st.reason, Ops: ops}
				}
			}
		case evPopRes:
			v := ev.val
			if v.popped {
				break
			}
			if !v.pushed {
				if st := doPush(v, idx); st != nil {
					return Result{Kind: KindStack, Outcome: Inconclusive, Reason: "greedy scheduler stuck at pop deadline: " + st.reason, Ops: ops}
				}
			}
			for len(stack) > 0 && stack[len(stack)-1] != v {
				u := stack[len(stack)-1]
				if !u.matched || u.c >= idx {
					return Result{Kind: KindStack, Outcome: Inconclusive,
						Reason: "greedy scheduler stuck: unpoppable blocker above a value at its pop deadline", Ops: ops}
				}
				doPop(u)
			}
			if len(stack) == 0 {
				return Result{Kind: KindStack, Outcome: Inconclusive, Reason: "greedy scheduler lost a value before its pop deadline", Ops: ops}
			}
			doPop(v)
			if len(stack) == 0 && len(opened) > 0 {
				discharge()
			}
		case evEmptyInv:
			// The window opens at idx; the earliest discharge point lives
			// in the next gap, handled by the idx+1 sweep.
			opened = append(opened, ev.op)
		case evEmptyRes:
			pending := false
			for _, e := range opened {
				if e.ResIndex == idx {
					pending = true
				}
			}
			if pending {
				if len(stack) != 0 {
					return Result{Kind: KindStack, Outcome: Inconclusive,
						Reason: "greedy scheduler stuck: stack nonempty throughout a pop-empty window", Ops: ops}
				}
				discharge()
			}
		}
	}

	if !validStackWitness(ops, schedule) {
		return Result{Kind: KindStack, Outcome: Inconclusive, Reason: "greedy schedule failed witness validation", Ops: ops}
	}
	return Result{Kind: KindStack, Outcome: OK, Ops: ops}
}

// validStackWitness replays a candidate linearization: every operation
// scheduled exactly once, linearization points assignable in strictly
// increasing real order inside each op's open window, and LIFO semantics
// holding at every step.
func validStackWitness(ops []history.Op, schedule []history.Op) bool {
	if len(schedule) != len(ops) {
		return false
	}
	lower := -1 // infimum of the last chosen real point
	var st []int64
	for i := range schedule {
		op := &schedule[i]
		if op.InvIndex > lower {
			lower = op.InvIndex
		}
		if lower >= op.ResIndex {
			return false
		}
		switch op.Method {
		case spec.MethodPush:
			st = append(st, op.Arg.N)
		case spec.MethodPop:
			if !op.Ret.B {
				if len(st) != 0 {
					return false
				}
				break
			}
			if len(st) == 0 || st[len(st)-1] != op.Ret.N {
				return false
			}
			st = st[:len(st)-1]
		default:
			return false
		}
	}
	return true
}
