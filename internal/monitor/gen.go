package monitor

import (
	"math/rand"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// The generators below produce arbitrarily large histories that are
// unambiguous (fresh values from a counter, so every value is inserted
// at most once) and linearizable by construction: each operation is
// applied to the sequential state at its invocation, i.e. it linearizes
// immediately after its invocation event, while responses are delayed at
// random across other threads' events to create genuine overlap. They
// exist so monitor benchmarks and regression seeds don't depend on
// having live concurrent objects to record.

// generate interleaves nOps operations over the given number of threads.
// next draws the following operation against the sequential state,
// linearized at its invocation.
func generate(nOps, threads int, seed int64, obj history.ObjectID,
	next func(r *rand.Rand) (history.Method, history.Value, history.Value)) history.History {
	if threads < 1 {
		threads = 1
	}
	rng := rand.New(rand.NewSource(seed))
	type pend struct {
		t history.ThreadID
		e history.Event
	}
	free := make([]history.ThreadID, threads)
	for i := range free {
		free[i] = history.ThreadID(i + 1)
	}
	var busy []pend
	h := make(history.History, 0, 2*nOps)
	started := 0
	for started < nOps || len(busy) > 0 {
		startable := started < nOps && len(free) > 0
		if startable && (len(busy) == 0 || rng.Float64() < 0.6) {
			i := rng.Intn(len(free))
			t := free[i]
			free[i] = free[len(free)-1]
			free = free[:len(free)-1]
			m, arg, ret := next(rng)
			h = append(h, history.Inv(t, obj, m, arg))
			busy = append(busy, pend{t: t, e: history.Res(t, obj, m, ret)})
			started++
		} else {
			i := rng.Intn(len(busy))
			p := busy[i]
			busy[i] = busy[len(busy)-1]
			busy = busy[:len(busy)-1]
			h = append(h, p.e)
			free = append(free, p.t)
		}
	}
	return h
}

// GenQueue generates a linearizable unambiguous FIFO-queue history with
// nOps operations interleaved over the given number of threads.
func GenQueue(nOps, threads int, seed int64, obj history.ObjectID) history.History {
	var q []int64
	var ctr int64
	return generate(nOps, threads, seed, obj, func(r *rand.Rand) (history.Method, history.Value, history.Value) {
		if len(q) == 0 {
			if r.Float64() < 0.15 {
				return spec.MethodDeq, history.Unit(), history.Pair(false, 0)
			}
		}
		if len(q) == 0 || r.Float64() < 0.55 {
			v := ctr
			ctr++
			q = append(q, v)
			return spec.MethodEnq, history.Int(v), history.Bool(true)
		}
		v := q[0]
		q = q[1:]
		return spec.MethodDeq, history.Unit(), history.Pair(true, v)
	})
}

// GenStack generates a linearizable unambiguous LIFO-stack history.
func GenStack(nOps, threads int, seed int64, obj history.ObjectID) history.History {
	var st []int64
	var ctr int64
	return generate(nOps, threads, seed, obj, func(r *rand.Rand) (history.Method, history.Value, history.Value) {
		if len(st) == 0 {
			if r.Float64() < 0.15 {
				return spec.MethodPop, history.Unit(), history.Pair(false, 0)
			}
		}
		if len(st) == 0 || r.Float64() < 0.55 {
			v := ctr
			ctr++
			st = append(st, v)
			return spec.MethodPush, history.Int(v), history.Bool(true)
		}
		v := st[len(st)-1]
		st = st[:len(st)-1]
		return spec.MethodPop, history.Unit(), history.Pair(true, v)
	})
}

// GenSet generates a linearizable unambiguous set history: fresh values
// are added (at most once each), removed at most once, and probed with
// contains in both polarities.
func GenSet(nOps, threads int, seed int64, obj history.ObjectID) history.History {
	var present []int64
	var ctr, never int64
	return generate(nOps, threads, seed, obj, func(r *rand.Rand) (history.Method, history.Value, history.Value) {
		p := r.Float64()
		switch {
		case p < 0.40 || len(present) == 0:
			v := ctr
			ctr++
			present = append(present, v)
			return spec.MethodAdd, history.Int(v), history.Bool(true)
		case p < 0.60:
			i := r.Intn(len(present))
			v := present[i]
			present[i] = present[len(present)-1]
			present = present[:len(present)-1]
			return spec.MethodRemove, history.Int(v), history.Bool(true)
		case p < 0.70:
			never++
			return spec.MethodRemove, history.Int(-never), history.Bool(false)
		case p < 0.85:
			v := present[r.Intn(len(present))]
			return spec.MethodContains, history.Int(v), history.Bool(true)
		default:
			never++
			return spec.MethodContains, history.Int(-never), history.Bool(false)
		}
	})
}

// GenPQueue generates a linearizable unambiguous min-priority-queue
// history with distinct random priorities.
func GenPQueue(nOps, threads int, seed int64, obj history.ObjectID) history.History {
	var heap []int64
	var ctr int64
	push := func(v int64) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() int64 {
		v := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l] < heap[small] {
				small = l
			}
			if r < len(heap) && heap[r] < heap[small] {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return v
	}
	return generate(nOps, threads, seed, obj, func(r *rand.Rand) (history.Method, history.Value, history.Value) {
		if len(heap) == 0 {
			if r.Float64() < 0.15 {
				return spec.MethodExtractMin, history.Unit(), history.Pair(false, 0)
			}
		}
		if len(heap) == 0 || r.Float64() < 0.55 {
			// Random high bits keep extraction order scrambled; the low
			// bits carry the counter so priorities stay distinct.
			v := r.Int63n(1<<30)<<21 | ctr
			ctr++
			push(v)
			return spec.MethodInsert, history.Int(v), history.Bool(true)
		}
		return spec.MethodExtractMin, history.Unit(), history.Pair(true, pop())
	})
}
