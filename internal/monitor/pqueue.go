package monitor

import (
	"sort"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// pqVal is one value's insert window (a, b) and extract window (c, d).
type pqVal struct {
	v          int64
	a, b, c, d int
	matched    bool
}

// checkPQueue decides linearizability of a complete unambiguous
// min-priority-queue history in O(n log n) via the bad patterns P0–P3:
//
//	P0  a value is extracted but never inserted;
//	P1  a value is extracted entirely before its insert (a > d);
//	P2  priority inversion: the open window of extractmin ▷ v is fully
//	    covered by the union of the sure-presence cores [insRes, extInv]
//	    of *strictly smaller* values — at every feasible extraction point
//	    some value smaller than v is provably in the queue, so the
//	    minimum cannot be v;
//	P3  an empty-extract window is covered by the merged sure-presence
//	    cores of all values (as Q4 for queues).
//
// P2 is evaluated with a sweep in increasing value order over a lazy
// range-add/range-min segment tree on doubled coordinates (integer event
// points and the open real gaps between them), querying each extract's
// window before inserting the value's own core.
func checkPQueue(ops []history.Op) Result {
	vals := make(map[int64]*pqVal, len(ops)/2)
	var empties []history.Op
	maxIdx := 0
	for i := range ops {
		op := &ops[i]
		if op.ResIndex > maxIdx {
			maxIdx = op.ResIndex
		}
		switch op.Method {
		case spec.MethodInsert:
			if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindBool || !op.Ret.B {
				return ineligible(KindPQueue, ops, "insert at inv=%d is not int ▷ true", op.InvIndex)
			}
			v := op.Arg.N
			if _, dup := vals[v]; dup {
				return ineligible(KindPQueue, ops, "value %d inserted more than once (ambiguous history)", v)
			}
			vals[v] = &pqVal{v: v, a: op.InvIndex, b: op.ResIndex, c: -1, d: -1}
		case spec.MethodExtractMin:
			if op.Arg.Kind != history.KindUnit || op.Ret.Kind != history.KindPair {
				return ineligible(KindPQueue, ops, "extractmin at inv=%d is not () ▷ (bool,int)", op.InvIndex)
			}
			if !op.Ret.B {
				if op.Ret.N != 0 {
					return violation(KindPQueue, ops, "failed extractmin at inv=%d returns (false,%d); the spec admits only (false,0)", op.InvIndex, op.Ret.N)
				}
				empties = append(empties, *op)
			}
		default:
			return ineligible(KindPQueue, ops, "unknown pqueue method %s", op.Method)
		}
	}
	for i := range ops {
		op := &ops[i]
		if op.Method != spec.MethodExtractMin || !op.Ret.B {
			continue
		}
		v := op.Ret.N
		pv, inserted := vals[v]
		if !inserted {
			return violation(KindPQueue, ops, "P0: extractmin ▷ %d at inv=%d but %d is never inserted", v, op.InvIndex, v)
		}
		if pv.matched {
			return ineligible(KindPQueue, ops, "value %d extracted more than once (ambiguous history)", v)
		}
		pv.matched = true
		pv.c, pv.d = op.InvIndex, op.ResIndex
		if pv.a > op.ResIndex {
			return violation(KindPQueue, ops,
				"P1: extractmin ▷ %d completes at %d before insert(%d) is invoked at %d", v, op.ResIndex, v, pv.a)
		}
	}

	// P3: empty extracts against the merged cores of every value.
	if len(empties) > 0 {
		cores := make([]core, 0, len(vals))
		for _, pv := range vals {
			if !pv.matched {
				cores = append(cores, core{s: pv.b, e: infIdx, v: pv.v})
			} else if pv.b < pv.c {
				cores = append(cores, core{s: pv.b, e: pv.c, v: pv.v})
			}
		}
		if r, bad := coveredEmpty(empties, cores); bad {
			return violation(KindPQueue, ops,
				"P3: empty extractmin with window (%d, %d) is covered by sure-presence core [%d, %d] — the queue is never empty there",
				r.inv, r.res, r.s, r.e)
		}
	}

	// P2 sweep in increasing value order. Doubled coordinates: position 2i
	// is event index i, position 2i+1 the open gap (i, i+1); a closed core
	// [s, e] covers 2s..2e, an open window (x, y) asks 2x+1..2y-1.
	ordered := make([]*pqVal, 0, len(vals))
	for _, pv := range vals {
		ordered = append(ordered, pv)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].v < ordered[j].v })
	t := newCoverSeg(2 * (maxIdx + 2))
	for _, pv := range ordered {
		if pv.matched {
			if t.rangeMin(2*pv.c+1, 2*pv.d-1) >= 1 {
				return violation(KindPQueue, ops,
					"P2: extractmin ▷ %d with window (%d, %d) is fully covered by smaller values' sure-presence cores — the minimum cannot be %d there",
					pv.v, pv.c, pv.d, pv.v)
			}
			if pv.b < pv.c {
				t.add(2*pv.b, 2*pv.c, 1)
			}
		} else {
			t.add(2*pv.b, 2*(maxIdx+1), 1)
		}
	}

	return Result{Kind: KindPQueue, Outcome: OK, Ops: ops}
}
