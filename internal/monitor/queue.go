package monitor

import (
	"sort"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// queueVal collects the matched enqueue/dequeue pair (or lone enqueue) of
// one value. Index fields are event indices in the history; an op with
// invocation index a and response index b linearizes at some real point in
// the open interval (a, b).
type queueVal struct {
	v          int64
	eInv, eRes int // enqueue window
	dInv, dRes int // dequeue window (valid iff dequeued)
	dequeued   bool
}

// checkQueue decides linearizability of a complete unambiguous FIFO-queue
// history in O(n log n) by checking the bad patterns Q0–Q4:
//
//	Q0  a value is dequeued but never enqueued;
//	Q1  a value is dequeued entirely before its enqueue (eInv > dRes);
//	Q2  FIFO inversion: u is enqueued strictly before v (eRes_u ≤ eInv_v)
//	    yet v is dequeued strictly before u's dequeue completes
//	    (dRes_v ≤ dInv_u) — no linearization can order both pairs;
//	Q3  a dequeued value is enqueued strictly after some never-dequeued
//	    value's enqueue completes — FIFO forces the unmatched value out
//	    first, but it is never dequeued;
//	Q4  an empty-dequeue window is covered by the merged closed cores
//	    [eRes, dInv] of values surely present throughout it.
//
// A history with none of these patterns is linearizable (completeness of
// the pattern set for unambiguous queue histories; cf. Bouajjani–Emmi–
// Enea–Hamza and Lee–Mathur).
func checkQueue(ops []history.Op) Result {
	vals := make(map[int64]*queueVal, len(ops)/2)
	var empties []history.Op // deq ▷ (false,0)
	for i := range ops {
		op := &ops[i]
		switch op.Method {
		case spec.MethodEnq:
			if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindBool || !op.Ret.B {
				return ineligible(KindQueue, ops, "enq at inv=%d is not int ▷ true", op.InvIndex)
			}
			v := op.Arg.N
			if _, dup := vals[v]; dup {
				return ineligible(KindQueue, ops, "value %d enqueued more than once (ambiguous history)", v)
			}
			vals[v] = &queueVal{v: v, eInv: op.InvIndex, eRes: op.ResIndex, dInv: -1, dRes: -1}
		case spec.MethodDeq:
			if op.Arg.Kind != history.KindUnit || op.Ret.Kind != history.KindPair {
				return ineligible(KindQueue, ops, "deq at inv=%d is not () ▷ (bool,int)", op.InvIndex)
			}
			if !op.Ret.B {
				if op.Ret.N != 0 {
					return violation(KindQueue, ops, "failed deq at inv=%d returns (false,%d); the spec admits only (false,0)", op.InvIndex, op.Ret.N)
				}
				empties = append(empties, *op)
				continue
			}
			// Dequeues of v may precede v's enqueue in invocation order,
			// so record them in a second pass below.
		default:
			return ineligible(KindQueue, ops, "unknown queue method %s", op.Method)
		}
	}
	for i := range ops {
		op := &ops[i]
		if op.Method != spec.MethodDeq || !op.Ret.B {
			continue
		}
		v := op.Ret.N
		qv, enqueued := vals[v]
		if !enqueued {
			return violation(KindQueue, ops, "Q0: deq ▷ %d at inv=%d but %d is never enqueued", v, op.InvIndex, v)
		}
		if qv.dequeued {
			return ineligible(KindQueue, ops, "value %d dequeued more than once (ambiguous history)", v)
		}
		qv.dequeued = true
		qv.dInv, qv.dRes = op.InvIndex, op.ResIndex
		if qv.eInv > op.ResIndex {
			return violation(KindQueue, ops,
				"Q1: deq ▷ %d completes at %d before enq(%d) is invoked at %d", v, op.ResIndex, v, qv.eInv)
		}
	}

	matched := make([]*queueVal, 0, len(vals))
	minUnmatchedERes := -1
	for _, qv := range vals {
		if qv.dequeued {
			matched = append(matched, qv)
		} else if minUnmatchedERes < 0 || qv.eRes < minUnmatchedERes {
			minUnmatchedERes = qv.eRes
		}
	}

	// Q3: an unmatched value whose enqueue completes at B must be dequeued
	// before any value enqueued strictly after B — but it never is.
	if minUnmatchedERes >= 0 {
		for _, qv := range matched {
			if qv.eInv > minUnmatchedERes {
				return violation(KindQueue, ops,
					"Q3: value %d enqueued after an unmatched value's enqueue completed at %d, yet %d is dequeued",
					qv.v, minUnmatchedERes, qv.v)
			}
		}
	}

	// Q2 sweep: sort candidates u by eRes; walk v in eInv order keeping the
	// running max of dInv over every u with eRes_u ≤ eInv_v. A FIFO
	// inversion exists iff that max reaches dRes_v for some v.
	if len(matched) > 1 {
		byERes := make([]*queueVal, len(matched))
		copy(byERes, matched)
		sort.Slice(byERes, func(i, j int) bool { return byERes[i].eRes < byERes[j].eRes })
		byEInv := make([]*queueVal, len(matched))
		copy(byEInv, matched)
		sort.Slice(byEInv, func(i, j int) bool { return byEInv[i].eInv < byEInv[j].eInv })
		i, maxDInv := 0, -1
		var maxU *queueVal
		for _, v := range byEInv {
			for i < len(byERes) && byERes[i].eRes <= v.eInv {
				if byERes[i].dInv > maxDInv {
					maxDInv, maxU = byERes[i].dInv, byERes[i]
				}
				i++
			}
			if maxU != nil && maxU != v && v.dRes <= maxDInv {
				return violation(KindQueue, ops,
					"Q2: FIFO inversion — enq(%d) completes at %d before enq(%d) starts at %d, but deq ▷ %d completes at %d before deq ▷ %d starts at %d",
					maxU.v, maxU.eRes, v.v, v.eInv, v.v, v.dRes, maxU.v, maxU.dInv)
			}
		}
	}

	// Q4: empty-dequeue coverage. Value v is surely present throughout the
	// CLOSED interval [eRes_v, dInv_v] (its real insertion point precedes
	// eRes and its real removal point follows dInv); unmatched values are
	// present on [eRes_v, ∞). Merge the closed cores (touching cores chain:
	// next.s ≤ cur.e) and reject an empty deq with window (x, y) iff one
	// merged core [s, e] has s ≤ x and y ≤ e — then every real point in
	// (x, y) sees a nonempty queue.
	if len(empties) > 0 {
		if r, bad := coveredEmpty(empties, coreIntervals(vals)); bad {
			return r.into(KindQueue, ops, "deq")
		}
	}

	return Result{Kind: KindQueue, Outcome: OK, Ops: ops}
}

// core is a closed interval [s, e] during which a value is surely present.
type core struct {
	s, e int
	v    int64
}

// coreIntervals builds the closed sure-presence cores of a queue history:
// [eRes, dInv] for matched values (nonempty iff eRes < dInv, since the
// window endpoints themselves are excluded from real presence only
// strictly), [eRes, maxInt] for unmatched values.
func coreIntervals(vals map[int64]*queueVal) []core {
	const inf = int(^uint(0) >> 1)
	cores := make([]core, 0, len(vals))
	for _, qv := range vals {
		if !qv.dequeued {
			cores = append(cores, core{s: qv.eRes, e: inf, v: qv.v})
			continue
		}
		if qv.eRes < qv.dInv {
			cores = append(cores, core{s: qv.eRes, e: qv.dInv, v: qv.v})
		}
	}
	return cores
}

type emptyViolation struct {
	inv, res int
	s, e     int
}

func (ev emptyViolation) into(k Kind, ops []history.Op, method string) Result {
	return violation(k, ops,
		"Q4: empty %s with window (%d, %d) is covered by sure-presence core [%d, %d] — the object is never empty there",
		method, ev.inv, ev.res, ev.s, ev.e)
}

// coveredEmpty merges the closed cores and reports the first empty-result
// operation whose open window (InvIndex, ResIndex) is fully covered by a
// single merged core.
func coveredEmpty(empties []history.Op, cores []core) (emptyViolation, bool) {
	if len(cores) == 0 {
		return emptyViolation{}, false
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i].s < cores[j].s })
	merged := cores[:1]
	for _, c := range cores[1:] {
		last := &merged[len(merged)-1]
		if c.s <= last.e {
			if c.e > last.e {
				last.e = c.e
			}
			continue
		}
		merged = append(merged, c)
	}
	starts := make([]int, len(merged))
	for i, c := range merged {
		starts[i] = c.s
	}
	for _, op := range empties {
		// Find the last merged core starting at or before the window start.
		idx := sort.SearchInts(starts, op.InvIndex+1) - 1
		if idx >= 0 && op.ResIndex <= merged[idx].e {
			return emptyViolation{inv: op.InvIndex, res: op.ResIndex, s: merged[idx].s, e: merged[idx].e}, true
		}
	}
	return emptyViolation{}, false
}
