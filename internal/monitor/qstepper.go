package monitor

import (
	"container/heap"
	"fmt"
	"sort"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// queueStepper is the fully incremental queue monitor: the bad patterns
// Q0–Q4 of checkQueue, re-derived as prefix properties so each can be
// evaluated the moment its last constituent event arrives, with decided
// state shed as the stream advances.
//
// Per pattern (event indices are stream positions; an op with invocation
// index a and response index b linearizes in the open interval (a, b)):
//
//	Q0/Q1 at deq ▷ v response: if enq(v) has not been *invoked* yet, the
//	prefix is bad — any future enq(v) starts after this response (Q1),
//	and no enq at all is Q0. If enq(v) is invoked but unresponded the
//	match is legal (the enqueue linearizes early); its response fills in
//	eRes later.
//
//	Q2 (FIFO inversion: eRes_u ≤ eInv_w ∧ dRes_w ≤ dInv_u) at dRes_u:
//	both dequeues have completed by dRes_u (dRes_w ≤ dInv_u < dRes_u),
//	so an append-only log of completed dequeues (dRes, eInv) with a
//	running prefix-max of eInv answers "max eInv over dRes ≤ dInv_u" by
//	binary search. If enq(u) is still pending, eRes_u exceeds every
//	logged eInv and no instance exists yet — and none ever will, since
//	later dequeues respond after dInv_u.
//
//	Q3 (a dequeued value enqueued after an unmatched value's enqueue
//	completed) is not prefix-stable — an unmatched value may be dequeued
//	later — so it is evaluated only at Finish on a complete stream, from
//	the running max of matched eInv and the min eRes over values
//	unmatched at the end.
//
//	Q4 (empty deq with window (x, y) covered by merged sure-presence
//	cores): deferred until every dequeue invoked before y has responded;
//	dequeues invoked after y remove values at dInv ≥ y and cannot shrink
//	coverage below y, so the evaluation is then final and equal to the
//	batch verdict. Matched cores [eRes, dInv] live in a merged disjoint
//	interval set; values unmatched at evaluation time contribute
//	[eRes, ∞), collapsed into the single minimum unmatched eRes.
//
// Shedding: a value record is dropped as soon as both its operations
// completed and its contributions are folded into the Q2 log, the core
// set and the Q3 scalar; Q2 log entries and cores wholly before the
// oldest pending invocation (and oldest deferred empty window) can never
// be queried again and are dropped too, folding dropped eInv into a
// scalar base. Resident state therefore tracks the live window, not the
// stream length. The waived check: a value recurring after its record
// was shed is treated as fresh, not ambiguous (see Stepper).
type queueStepper struct {
	pend map[history.ThreadID]stepPending
	vals map[int64]*qsVal

	// Q2: completed value-dequeues in dRes order. deqBase folds the max
	// eInv of shed front entries (-1 when none).
	deqLog  []qDeqEntry
	deqBase int

	// Q3: running max eInv over matched values (-1 when none).
	maxMatchedEInv int

	// Q4.
	cores         coreSet
	unmatched     eResHeap // min-heap over unmatched completed enqueues, lazy deletion
	liveUnmatched int
	deferred      []qEmpty // empty-deq windows awaiting older dequeues; y increasing
	deferredHead  int

	pendingInv pendMinTracker // invocation indices of all pending ops (shed floor)
	pendingDeq pendMinTracker // invocation indices of pending dequeues (Q4 deferral)

	events, opsDone, lastIdx int
	lastShedPass             int
	shed                     int64
	done                     *StepResult
}

// qsVal is the live record of one value.
type qsVal struct {
	v          int64
	eInv, eRes int // eRes == -1 while the enqueue is unresponded
	dInv, dRes int
	matched    bool
}

type qDeqEntry struct {
	dRes, eInv, prefixMax int
}

type qEmpty struct {
	x, y int // open window (dInv, dRes) of an empty dequeue
}

func newQueueStepper() *queueStepper {
	return &queueStepper{
		pend:           make(map[history.ThreadID]stepPending),
		vals:           make(map[int64]*qsVal),
		deqBase:        -1,
		maxMatchedEInv: -1,
	}
}

func (s *queueStepper) Kind() Kind { return KindQueue }

func (s *queueStepper) fail(o StepOutcome, at int, format string, args ...any) StepResult {
	res := StepResult{Outcome: o, Reason: fmt.Sprintf(format, args...), AtEvent: at}
	s.done = &res
	return res
}

func (s *queueStepper) Advance(ev history.Event, idx int) StepResult {
	if s.done != nil {
		return *s.done
	}
	s.events++
	s.lastIdx = idx
	switch ev.Kind {
	case history.Invoke:
		if _, dup := s.pend[ev.Thread]; dup {
			return s.fail(StepIneligible, idx, "thread %s invokes %s while an operation is pending", ev.Thread, ev.Method)
		}
		switch ev.Method {
		case spec.MethodEnq:
			if ev.Arg.Kind != history.KindInt {
				return s.fail(StepIneligible, idx, "enq at inv=%d is not int ▷ true", idx)
			}
			v := ev.Arg.N
			if _, dup := s.vals[v]; dup {
				return s.fail(StepIneligible, idx, "value %d enqueued more than once (ambiguous history)", v)
			}
			s.vals[v] = &qsVal{v: v, eInv: idx, eRes: -1, dInv: -1, dRes: -1}
		case spec.MethodDeq:
			if ev.Arg.Kind != history.KindUnit {
				return s.fail(StepIneligible, idx, "deq at inv=%d is not () ▷ (bool,int)", idx)
			}
			s.pendingDeq.push(idx)
		default:
			return s.fail(StepIneligible, idx, "unknown queue method %s", ev.Method)
		}
		s.pend[ev.Thread] = stepPending{method: ev.Method, arg: ev.Arg, inv: idx}
		s.pendingInv.push(idx)
	case history.Respond:
		p, ok := s.pend[ev.Thread]
		if !ok || p.method != ev.Method {
			return s.fail(StepIneligible, idx, "response %s on thread %s does not match a pending invocation", ev.Method, ev.Thread)
		}
		delete(s.pend, ev.Thread)
		s.pendingInv.resolve(p.inv)
		s.opsDone++
		var res StepResult
		switch ev.Method {
		case spec.MethodEnq:
			res = s.enqDone(p, ev, idx)
		case spec.MethodDeq:
			s.pendingDeq.resolve(p.inv)
			res = s.deqDone(p, ev, idx)
		default:
			res = s.fail(StepIneligible, idx, "unknown queue method %s", ev.Method)
		}
		if res.Outcome != StepOK {
			return res
		}
		if res = s.drainDeferred(); res.Outcome != StepOK {
			return res
		}
		s.maybeShed()
	default:
		return s.fail(StepIneligible, idx, "unknown event kind %d", ev.Kind)
	}
	return stepOK
}

func (s *queueStepper) enqDone(p stepPending, ev history.Event, idx int) StepResult {
	if ev.Ret.Kind != history.KindBool || !ev.Ret.B {
		return s.fail(StepIneligible, idx, "enq at inv=%d is not int ▷ true", p.inv)
	}
	qv := s.vals[p.arg.N] // present: created at the invocation
	qv.eRes = idx
	if qv.matched {
		// The dequeue completed while this enqueue was unresponded: the
		// value linearizes early. No Q2 instance can name it as u (every
		// logged eInv precedes eRes_u = now), so fold the core and shed.
		if qv.eRes < qv.dInv {
			s.cores.insert(qv.eRes, qv.dInv)
		}
		delete(s.vals, qv.v)
		s.shed++
		return stepOK
	}
	heap.Push(&s.unmatched, eResItem{eRes: idx, v: qv.v})
	s.liveUnmatched++
	return stepOK
}

func (s *queueStepper) deqDone(p stepPending, ev history.Event, idx int) StepResult {
	if ev.Ret.Kind != history.KindPair {
		return s.fail(StepIneligible, idx, "deq at inv=%d is not () ▷ (bool,int)", p.inv)
	}
	x, y := p.inv, idx
	if !ev.Ret.B {
		if ev.Ret.N != 0 {
			return s.fail(StepViolation, idx,
				"failed deq at inv=%d returns (false,%d); the spec admits only (false,0)", p.inv, ev.Ret.N)
		}
		s.deferred = append(s.deferred, qEmpty{x: x, y: y})
		return stepOK
	}
	v := ev.Ret.N
	qv, ok := s.vals[v]
	if !ok {
		return s.fail(StepViolation, idx,
			"Q0: deq ▷ %d completes at %d but enq(%d) has not been invoked", v, idx, v)
	}
	if qv.matched {
		return s.fail(StepIneligible, idx, "value %d dequeued more than once (ambiguous history)", v)
	}
	qv.matched, qv.dInv, qv.dRes = true, x, y
	if qv.eInv > s.maxMatchedEInv {
		s.maxMatchedEInv = qv.eInv
	}
	if qv.eRes >= 0 {
		s.liveUnmatched--
		// Q2 with this value as u: any FIFO-inverted w has already
		// completed its dequeue (dRes_w ≤ dInv_u = x < now).
		if m := s.deqMaxEInvUpTo(x); m >= qv.eRes {
			return s.fail(StepViolation, idx,
				"Q2: FIFO inversion — a value enqueued at or after enq(%d) completed at %d is dequeued before deq ▷ %d starts at %d", v, qv.eRes, v, x)
		}
		if qv.eRes < x {
			s.cores.insert(qv.eRes, x)
		}
	}
	// Log the completed dequeue for future Q2 queries (eInv is known even
	// when the enqueue is still unresponded).
	pm := qv.eInv
	if n := len(s.deqLog); n > 0 && s.deqLog[n-1].prefixMax > pm {
		pm = s.deqLog[n-1].prefixMax
	}
	if s.deqBase > pm {
		pm = s.deqBase
	}
	s.deqLog = append(s.deqLog, qDeqEntry{dRes: y, eInv: qv.eInv, prefixMax: pm})
	if qv.eRes >= 0 {
		delete(s.vals, v)
		s.shed++
	}
	return stepOK
}

// deqMaxEInvUpTo returns the max eInv over completed dequeues with
// dRes ≤ x, including the folded base of shed entries (every shed entry
// has dRes below any reachable query threshold).
func (s *queueStepper) deqMaxEInvUpTo(x int) int {
	i := sort.Search(len(s.deqLog), func(i int) bool { return s.deqLog[i].dRes > x }) - 1
	if i < 0 {
		return s.deqBase
	}
	return s.deqLog[i].prefixMax
}

// minUnmatchedERes pops stale heap tops (matched or shed values) and
// returns the min eRes over currently unmatched completed enqueues,
// infIdx when none.
func (s *queueStepper) minUnmatchedERes() int {
	for len(s.unmatched) > 0 {
		top := s.unmatched[0]
		if qv, ok := s.vals[top.v]; ok && !qv.matched {
			return top.eRes
		}
		heap.Pop(&s.unmatched)
	}
	return infIdx
}

// drainDeferred evaluates deferred empty-dequeue windows whose result is
// final: once no dequeue invoked before y is pending, later dequeues can
// only remove values at dInv ≥ y, so coverage of (x, y) cannot shrink.
func (s *queueStepper) drainDeferred() StepResult {
	m := s.pendingDeq.min()
	for s.deferredHead < len(s.deferred) && s.deferred[s.deferredHead].y <= m {
		em := s.deferred[s.deferredHead]
		s.deferredHead++
		u := s.minUnmatchedERes()
		// Covered iff a merged core (matched cores plus [u, ∞) for the
		// minimum unmatched eRes) spans [s, e] with s ≤ x and y ≤ e.
		if u <= em.x {
			return s.fail(StepViolation, em.y,
				"Q4: empty deq with window (%d, %d) is covered by sure-presence core [%d, ∞) — the queue is never empty there", em.x, em.y, u)
		}
		if comp, ok := s.cores.lastStartingAtOrBefore(em.x); ok && (comp.e >= em.y || u <= comp.e) {
			return s.fail(StepViolation, em.y,
				"Q4: empty deq with window (%d, %d) is covered by sure-presence core [%d, %d] — the queue is never empty there", em.x, em.y, comp.s, comp.e)
		}
	}
	if s.deferredHead > 64 && s.deferredHead*2 > len(s.deferred) {
		s.deferred = append(s.deferred[:0:0], s.deferred[s.deferredHead:]...)
		s.deferredHead = 0
	}
	return stepOK
}

// maybeShed drops state that no future query can reach: Q2 log entries
// and cores wholly before the oldest pending invocation and oldest
// deferred empty window, and stale heap entries. Runs every 1024 events.
func (s *queueStepper) maybeShed() {
	if s.events-s.lastShedPass < 1024 {
		return
	}
	s.lastShedPass = s.events

	floor := s.pendingInv.min()
	// Q2 queries use x = dInv of a dequeue pending at shed time (≥ floor)
	// or invoked later (> now): drop entries with dRes < floor.
	cut := 0
	for cut < len(s.deqLog) && s.deqLog[cut].dRes < floor {
		if s.deqLog[cut].eInv > s.deqBase {
			s.deqBase = s.deqLog[cut].eInv
		}
		cut++
	}
	if cut > 0 {
		s.shed += int64(cut)
		s.deqLog = append(s.deqLog[:0:0], s.deqLog[cut:]...)
	}

	// Core queries come from deferred empty windows (known x) or future
	// ones (x ≥ floor): drop components ending before both.
	coreFloor := floor
	for i := s.deferredHead; i < len(s.deferred); i++ {
		if s.deferred[i].x < coreFloor {
			coreFloor = s.deferred[i].x
		}
	}
	s.shed += int64(s.cores.dropBefore(coreFloor))

	// Rebuild the unmatched heap when stale entries dominate.
	if len(s.unmatched) > 2*s.liveUnmatched+64 {
		live := s.unmatched[:0]
		for _, it := range s.unmatched {
			if qv, ok := s.vals[it.v]; ok && !qv.matched {
				live = append(live, it)
			}
		}
		s.unmatched = live
		heap.Init(&s.unmatched)
	}
}

func (s *queueStepper) Finish() StepResult {
	if s.done != nil {
		return *s.done
	}
	if len(s.pend) > 0 {
		res := StepResult{
			Outcome: StepOK,
			Reason:  fmt.Sprintf("%d invocations pending at end of stream; final Q3/Q4 checks skipped", len(s.pend)),
			AtEvent: -1,
		}
		s.done = &res
		return res
	}
	// No dequeues pending: every deferred empty window is final.
	if res := s.drainDeferred(); res.Outcome != StepOK {
		return res
	}
	// Q3: a matched value enqueued strictly after some unmatched value's
	// enqueue completed — FIFO forces the unmatched value out first.
	if u := s.minUnmatchedERes(); u < infIdx && s.maxMatchedEInv > u {
		return s.fail(StepViolation, s.lastIdx,
			"Q3: a value enqueued after an unmatched value's enqueue completed at %d is dequeued, yet the unmatched value never is", u)
	}
	res := stepOK
	s.done = &res
	return res
}

func (s *queueStepper) Stats() StepStats {
	return StepStats{
		Events:  s.events,
		Ops:     s.opsDone,
		Pending: len(s.pend),
		Resident: len(s.vals) + len(s.pend) + len(s.deqLog) + s.cores.len() +
			len(s.unmatched) + (len(s.deferred) - s.deferredHead) +
			s.pendingInv.resident() + s.pendingDeq.resident(),
		Shed:        s.shed,
		Incremental: true,
	}
}

// pendMinTracker tracks the minimum of a set of indices pushed in
// increasing order and resolved in arbitrary order, with compaction so
// resident memory tracks the live set.
type pendMinTracker struct {
	q        []int
	head     int
	resolved map[int]struct{}
}

func (t *pendMinTracker) push(i int) { t.q = append(t.q, i) }

func (t *pendMinTracker) resolve(i int) {
	if t.head < len(t.q) && t.q[t.head] == i {
		t.head++
	} else {
		if t.resolved == nil {
			t.resolved = make(map[int]struct{})
		}
		t.resolved[i] = struct{}{}
	}
	for t.head < len(t.q) {
		if _, ok := t.resolved[t.q[t.head]]; !ok {
			break
		}
		delete(t.resolved, t.q[t.head])
		t.head++
	}
	if t.head > 4096 && t.head*2 > len(t.q) {
		t.q = append(t.q[:0:0], t.q[t.head:]...)
		t.head = 0
	}
}

// min returns the smallest live index, infIdx when none.
func (t *pendMinTracker) min() int {
	if t.head >= len(t.q) {
		return infIdx
	}
	return t.q[t.head]
}

func (t *pendMinTracker) resident() int { return len(t.q) - t.head + len(t.resolved) }

// eResHeap is a min-heap of unmatched completed enqueues keyed by eRes.
type eResItem struct {
	eRes int
	v    int64
}

type eResHeap []eResItem

func (h eResHeap) Len() int           { return len(h) }
func (h eResHeap) Less(i, j int) bool { return h[i].eRes < h[j].eRes }
func (h eResHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eResHeap) Push(x any)        { *h = append(*h, x.(eResItem)) }
func (h *eResHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// coreSet maintains the merged sure-presence cores as disjoint,
// non-touching components sorted by start (closed intervals; touching
// endpoints merge, matching coveredEmpty's batch merge).
type coreSet struct {
	comp []coreComp
}

type coreComp struct{ s, e int }

func (c *coreSet) len() int { return len(c.comp) }

func (c *coreSet) insert(s, e int) {
	lo := sort.Search(len(c.comp), func(i int) bool { return c.comp[i].e >= s })
	hi := sort.Search(len(c.comp), func(i int) bool { return c.comp[i].s > e })
	if lo >= hi {
		c.comp = append(c.comp, coreComp{})
		copy(c.comp[lo+1:], c.comp[lo:])
		c.comp[lo] = coreComp{s: s, e: e}
		return
	}
	ns, ne := c.comp[lo].s, c.comp[hi-1].e
	if s < ns {
		ns = s
	}
	if e > ne {
		ne = e
	}
	c.comp[lo] = coreComp{s: ns, e: ne}
	c.comp = append(c.comp[:lo+1], c.comp[hi:]...)
}

// lastStartingAtOrBefore returns the component with the largest start
// ≤ x (components are disjoint and sorted, so it also has the largest
// end among them).
func (c *coreSet) lastStartingAtOrBefore(x int) (coreComp, bool) {
	i := sort.Search(len(c.comp), func(i int) bool { return c.comp[i].s > x }) - 1
	if i < 0 {
		return coreComp{}, false
	}
	return c.comp[i], true
}

// dropBefore removes components ending before floor, returning the count.
func (c *coreSet) dropBefore(floor int) int {
	cut := 0
	for cut < len(c.comp) && c.comp[cut].e < floor {
		cut++
	}
	if cut > 0 {
		c.comp = append(c.comp[:0:0], c.comp[cut:]...)
	}
	return cut
}
