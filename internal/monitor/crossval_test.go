package monitor_test

import (
	"context"
	"math/rand"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/monitor"
	"calgo/internal/spec"
)

// Cross-validation property test (the ISSUE's agreement pin): for every
// object kind with a specialized monitor and thousands of generated
// small histories — linearizable by construction, plus return-value
// mutants that are usually not — the monitor and the DFS must agree:
//
//   - a definite monitor outcome (OK / Violation) must equal the DFS
//     verdict (Sat / Unsat);
//   - an auto-engine checker must return exactly the DFS verdict.
//
// On disagreement the history is printed in the interchange format so it
// can be replayed with `calcheck -spec <kind> -engine dfs <file>`.

const xobj = history.ObjectID("o")

type crossKind struct {
	name string
	sp   spec.Spec
	gen  func(n, threads int, seed int64, obj history.ObjectID) history.History
}

func crossKinds() []crossKind {
	return []crossKind{
		{"queue", spec.NewQueue(xobj), monitor.GenQueue},
		{"stack", spec.Stack{Obj: xobj}, monitor.GenStack},
		{"set", spec.NewSet(xobj), monitor.GenSet},
		{"pqueue", spec.NewPQueue(xobj), monitor.GenPQueue},
	}
}

// mutate returns a copy of h with one response value perturbed — the
// cheapest way to manufacture histories that are ill-formed for the
// object's semantics while staying well-formed as histories.
func mutate(h history.History, rng *rand.Rand) history.History {
	out := append(history.History(nil), h...)
	// Collect response positions.
	var resIdx []int
	for i, e := range out {
		if !e.IsInv() {
			resIdx = append(resIdx, i)
		}
	}
	if len(resIdx) == 0 {
		return out
	}
	i := resIdx[rng.Intn(len(resIdx))]
	e := out[i]
	switch e.Ret.Kind {
	case history.KindBool:
		e.Ret = history.Bool(!e.Ret.B)
	case history.KindPair:
		switch rng.Intn(3) {
		case 0:
			e.Ret = history.Pair(!e.Ret.B, 0)
		case 1:
			e.Ret = history.Pair(true, e.Ret.N+1)
		default:
			e.Ret = history.Pair(e.Ret.B, rng.Int63n(8))
		}
	default:
		return out
	}
	out[i] = e
	return out
}

func TestMonitorDFSCrossValidation(t *testing.T) {
	baseSeeds := 250
	if testing.Short() {
		baseSeeds = 40
	}
	ctx := context.Background()
	for _, k := range crossKinds() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			dfs, err := check.NewChecker(k.sp)
			if err != nil {
				t.Fatalf("NewChecker(dfs): %v", err)
			}
			auto, err := check.NewChecker(k.sp, check.WithEngine(check.EngineAuto))
			if err != nil {
				t.Fatalf("NewChecker(auto): %v", err)
			}
			checked, monitorDecided := 0, 0
			for seed := int64(0); seed < int64(baseSeeds); seed++ {
				rng := rand.New(rand.NewSource(seed * 7919))
				base := k.gen(3+int(seed)%10, 1+int(seed)%3, seed, xobj)
				histories := []history.History{base, mutate(base, rng), mutate(base, rng)}
				for _, h := range histories {
					dres, err := dfs.Check(ctx, h)
					if err != nil {
						t.Fatalf("seed %d: dfs check: %v", seed, err)
					}
					if dres.Verdict == check.Unknown {
						continue // out of budget; nothing to compare against
					}
					checked++
					ares, err := auto.Check(ctx, h)
					if err != nil {
						t.Fatalf("seed %d: auto check: %v", seed, err)
					}
					if ares.Verdict != dres.Verdict {
						t.Fatalf("seed %d: engine disagreement: auto=%s (engine %s) dfs=%s\nreplay with calcheck -engine dfs on:\n%s",
							seed, ares.Verdict, ares.Engine, dres.Verdict, history.Format(h))
					}
					mres := monitor.Check(h, k.sp)
					switch mres.Outcome {
					case monitor.OK, monitor.Violation:
						monitorDecided++
						want := mres.Outcome == monitor.OK
						if want != (dres.Verdict == check.Sat) {
							t.Fatalf("seed %d: monitor disagreement: monitor=%s (%s) dfs=%s\nreplay with calcheck -engine dfs on:\n%s",
								seed, mres.Outcome, mres.Reason, dres.Verdict, history.Format(h))
						}
					}
				}
			}
			if checked == 0 {
				t.Fatal("cross-validation compared zero histories")
			}
			if monitorDecided == 0 {
				t.Fatal("monitor decided zero histories; the fast path is not being exercised")
			}
			t.Logf("%s: %d histories compared, %d decided by the monitor", k.name, checked, monitorDecided)
		})
	}
}
