package monitor

import (
	"sort"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// setVal collects one value's operations. In the unambiguous fragment a
// value has at most one add and at most one remove (any number of
// contains), so its presence is a single real interval (α, ρ) and each
// value can be decided independently of all others.
type setVal struct {
	v            int64
	add, remove  *history.Op
	containsTrue []history.Op
	containsF    []history.Op
}

// checkSet decides linearizability of a complete unambiguous set history
// in O(n log n). Values are independent: contains(v)/remove(v) observe
// only v, and real-time constraints are fully captured by the operations'
// windows, so the history is linearizable iff every value's constraint
// system over its add point α and remove point ρ is feasible:
//
//   - no add: every true observation of v (contains ▷ true, remove ▷
//     true) and add ▷ false is a violation;
//   - add ▷ false with a single add is a violation (v is never present
//     before its only add);
//   - add ▷ true, no successful remove: presence is (α, ∞); feasible iff
//     some α in the add window lies after every false observer's
//     invocation and before every true observer's response;
//   - add ▷ true and remove ▷ true: presence is (α, ρ); true observers
//     bound α < minTrueRes and ρ > maxTrueInv, each false observer needs
//     a point before α or after ρ — a disjunction solved exactly by
//     sweeping candidate α breakpoints against the suffix-minimum of
//     false observers' response indices.
func checkSet(ops []history.Op) Result {
	vals := make(map[int64]*setVal, len(ops)/2)
	get := func(v int64) *setVal {
		sv := vals[v]
		if sv == nil {
			sv = &setVal{v: v}
			vals[v] = sv
		}
		return sv
	}
	for i := range ops {
		op := &ops[i]
		if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindBool {
			return ineligible(KindSet, ops, "%s at inv=%d is not int ▷ bool", op.Method, op.InvIndex)
		}
		v := op.Arg.N
		switch op.Method {
		case spec.MethodAdd:
			sv := get(v)
			if sv.add != nil {
				return ineligible(KindSet, ops, "value %d added more than once (ambiguous history)", v)
			}
			sv.add = op
		case spec.MethodRemove:
			sv := get(v)
			if sv.remove != nil {
				return ineligible(KindSet, ops, "value %d removed more than once (ambiguous history)", v)
			}
			sv.remove = op
		case spec.MethodContains:
			sv := get(v)
			if op.Ret.B {
				sv.containsTrue = append(sv.containsTrue, *op)
			} else {
				sv.containsF = append(sv.containsF, *op)
			}
		default:
			return ineligible(KindSet, ops, "unknown set method %s", op.Method)
		}
	}

	for _, sv := range vals {
		if r, bad := checkSetValue(ops, sv); bad {
			return r
		}
	}
	return Result{Kind: KindSet, Outcome: OK, Ops: ops}
}

func checkSetValue(ops []history.Op, sv *setVal) (Result, bool) {
	v := sv.v
	if sv.add == nil {
		if len(sv.containsTrue) > 0 {
			return violation(KindSet, ops, "contains(%d) ▷ true at inv=%d but %d is never added",
				v, sv.containsTrue[0].InvIndex, v), true
		}
		if sv.remove != nil && sv.remove.Ret.B {
			return violation(KindSet, ops, "remove(%d) ▷ true at inv=%d but %d is never added",
				v, sv.remove.InvIndex, v), true
		}
		return Result{}, false
	}
	if !sv.add.Ret.B {
		return violation(KindSet, ops, "add(%d) ▷ false at inv=%d but %d has no other add",
			v, sv.add.InvIndex, v), true
	}

	aInv, aRes := sv.add.InvIndex, sv.add.ResIndex
	minTrueRes, maxTrueInv := infIdx, -1
	for i := range sv.containsTrue {
		if sv.containsTrue[i].ResIndex < minTrueRes {
			minTrueRes = sv.containsTrue[i].ResIndex
		}
		if sv.containsTrue[i].InvIndex > maxTrueInv {
			maxTrueInv = sv.containsTrue[i].InvIndex
		}
	}

	if sv.remove == nil || !sv.remove.Ret.B {
		// Presence (α, ∞): false observers (contains ▷ false, and a
		// failed remove) need points before α, true observers after.
		maxFalseInv := -1
		for i := range sv.containsF {
			if sv.containsF[i].InvIndex > maxFalseInv {
				maxFalseInv = sv.containsF[i].InvIndex
			}
		}
		if sv.remove != nil && sv.remove.InvIndex > maxFalseInv {
			maxFalseInv = sv.remove.InvIndex
		}
		lo, hi := aInv, aRes
		if maxFalseInv > lo {
			lo = maxFalseInv
		}
		if minTrueRes < hi {
			hi = minTrueRes
		}
		if lo >= hi {
			return violation(KindSet, ops,
				"no feasible add point for %d: every α in (%d, %d) sits before a false observer's invocation or after a true observer's response",
				v, aInv, aRes), true
		}
		return Result{}, false
	}

	// add ▷ true and remove ▷ true: presence (α, ρ).
	rInv, rRes := sv.remove.InvIndex, sv.remove.ResIndex
	lAlpha, uAlpha := aInv, aRes
	if minTrueRes < uAlpha {
		uAlpha = minTrueRes
	}
	lRho, uRho := rInv, rRes
	if maxTrueInv > lRho {
		lRho = maxTrueInv
	}
	if setFeasibleRemoved(lAlpha, uAlpha, lRho, uRho, sv.containsF) {
		return Result{}, false
	}
	return violation(KindSet, ops,
		"no feasible add/remove points for %d: add window (%d, %d), remove window (%d, %d) and its observers admit no presence interval",
		v, aInv, aRes, rInv, rRes), true
}

// setFeasibleRemoved decides ∃ α ∈ (lAlpha, uAlpha), ρ ∈ (lRho, uRho)
// with α < ρ such that every false observer has a point before α or
// after ρ. Raising α past a false observer's invocation satisfies it on
// the left but never loosens the others, so only breakpoint candidates
// for α matter: just above lAlpha and just above each false invocation
// inside the α range. For a candidate just above t, the observers left
// unsatisfied are those invoked after t, and they force ρ below the
// suffix-minimum of their responses.
func setFeasibleRemoved(lAlpha, uAlpha, lRho, uRho int, falseObs []history.Op) bool {
	if lAlpha >= uAlpha || lRho >= uRho {
		return false
	}
	xs := make([]int, len(falseObs))
	for i := range falseObs {
		xs[i] = i
	}
	sort.Slice(xs, func(i, j int) bool { return falseObs[xs[i]].InvIndex < falseObs[xs[j]].InvIndex })
	// suffMinY[i] = min response over sorted false observers i..end.
	suffMinY := make([]int, len(xs)+1)
	suffMinY[len(xs)] = infIdx
	for i := len(xs) - 1; i >= 0; i-- {
		suffMinY[i] = falseObs[xs[i]].ResIndex
		if suffMinY[i+1] < suffMinY[i] {
			suffMinY[i] = suffMinY[i+1]
		}
	}
	try := func(t int) bool {
		// α = t + ε. Unsatisfied false observers: invocation > t.
		i := sort.Search(len(xs), func(k int) bool { return falseObs[xs[k]].InvIndex > t })
		rhoLo, rhoHi := lRho, uRho
		if t > rhoLo {
			rhoLo = t
		}
		if suffMinY[i] < rhoHi {
			rhoHi = suffMinY[i]
		}
		return rhoLo < rhoHi
	}
	if try(lAlpha) {
		return true
	}
	for _, k := range xs {
		x := falseObs[k].InvIndex
		if x > lAlpha && x < uAlpha && try(x) {
			return true
		}
	}
	return false
}
