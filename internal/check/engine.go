package check

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"calgo/internal/history"
	"calgo/internal/monitor"
)

// Engine selects the decision procedure a Checker runs.
type Engine uint8

const (
	// EngineDFS always runs the memoized parallel DFS search. It is the
	// zero value and the library default: every verdict comes with a
	// witness trace and full explanation, exactly as before engines
	// existed.
	EngineDFS Engine = iota
	// EngineAuto routes each history through the classifier in
	// calgo/internal/monitor: histories in the unambiguous fragment of a
	// supported collection spec are decided by the O(n log n) specialized
	// monitor, everything else falls back to the DFS. Verdicts always
	// agree with EngineDFS; a monitor-decided Sat carries no witness
	// trace (Result.Witness is nil, Result.Engine == EngineMonitor).
	EngineAuto
	// EngineMonitor runs only the specialized monitor. Histories the
	// monitor cannot decide yield Unknown with cause
	// ErrMonitorIneligible instead of falling back. Exists for
	// benchmarking and for pinning the monitor path in tests.
	EngineMonitor
)

// ErrMonitorIneligible is the Unknown cause when EngineMonitor is forced
// on a history outside the specialized monitors' unambiguous fragment
// (or one the stack monitor cannot decide).
var ErrMonitorIneligible = errors.New("check: history not decidable by the specialized monitor")

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineMonitor:
		return "monitor"
	default:
		return "dfs"
	}
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "dfs":
		return EngineDFS, nil
	case "auto":
		return EngineAuto, nil
	case "monitor":
		return EngineMonitor, nil
	default:
		return EngineDFS, fmt.Errorf("check: unknown engine %q (want dfs, auto or monitor)", s)
	}
}

// WithEngine selects the decision procedure (default EngineDFS). See the
// Engine constants for the contract of each.
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// tryMonitor attempts the specialized-monitor fast path for h. The
// second return is true iff the monitor decided (or, under
// EngineMonitor, definitively punted): a false return means the caller
// must run the DFS.
func (c *Checker) tryMonitor(h history.History, live *atomic.Int64) (Result, bool) {
	mres := monitor.Check(h, c.sp)
	m := c.cfg.metrics
	// A monitor decision is a degenerate "search": bracket it with
	// SearchStart/SearchEnd so tracers (and the -trace flight ring,
	// which dumps on VIOLATION/UNKNOWN) still witness the run.
	trace := func(verdict Verdict) {
		if t := c.cfg.tracer; t != nil {
			t.SearchStart(len(mres.Ops))
			t.SearchEnd(verdict.String(), 1)
		}
	}
	switch mres.Outcome {
	case monitor.OK, monitor.Violation:
		res := Result{Engine: EngineMonitor}
		if mres.Outcome == monitor.OK {
			res.Verdict = Sat
			res.OK = true
			// Monitors prove Sat without materializing a witness trace;
			// Result.Witness stays nil. Ask EngineDFS for the trace.
			res.Explanation = &Explanation{Verdict: Sat, Ops: mres.Ops}
		} else {
			res.Verdict = Unsat
			res.Reason = "monitor: " + mres.Reason
			res.Explanation = &Explanation{Verdict: Unsat, Ops: mres.Ops}
		}
		if m != nil {
			m.Counter("monitor.dispatch").Inc()
			m.Counter("check.checks").Inc()
			m.Counter("check.verdict." + strings.ToLower(res.Verdict.String())).Inc()
		}
		if live != nil {
			// One "state" per monitor decision keeps progress reporters
			// and live views moving on batches.
			live.Add(1)
		}
		trace(res.Verdict)
		return res, true
	default: // Ineligible or Inconclusive
		if c.cfg.engine == EngineAuto {
			if m != nil {
				m.Counter("monitor.fallback").Inc()
			}
			return Result{}, false
		}
		res := Result{
			Verdict: Unknown,
			Engine:  EngineMonitor,
			Unknown: &UnknownInfo{
				Cause:  ErrMonitorIneligible,
				Reason: mres.Reason,
			},
			Explanation: &Explanation{Verdict: Unknown, Ops: mres.Ops},
		}
		if m != nil {
			m.Counter("monitor.fallback").Inc()
			m.Counter("check.checks").Inc()
			m.Counter("check.verdict." + strings.ToLower(res.Verdict.String())).Inc()
		}
		trace(res.Verdict)
		return res, true
	}
}
