package check

import (
	"calgo/internal/history"
	"calgo/internal/trace"
)

// Explanation is the structured evidence behind a verdict — the paper's
// artifacts made inspectable instead of stringly: the history's
// operations, the witness CA-trace (full on Sat, the deepest partial
// linearization on Unsat/Unknown), and derived views of the `H ⊑CAL T`
// surjection (Definition 5) and of the operations the search could not
// linearize. It is attached to every Result; construction is O(1) (slice
// headers over state the search already retained) and the derived views
// are computed on demand, so explaining costs nothing until a renderer
// asks.
//
// All index-valued views index into Ops, which lists the history's
// operations in invocation order.
type Explanation struct {
	// Verdict mirrors Result.Verdict.
	Verdict Verdict
	// Ops are the history's operations in invocation order; InvIndex and
	// ResIndex locate each operation's actions within the history.
	Ops []history.Op
	// Witness is the matched CA-trace on Sat, or the CA-trace prefix of
	// the deepest linearization reached on Unsat/Unknown (a diagnostic
	// lead, not a proof).
	Witness trace.Trace
}

// NumEvents returns the number of actions in the underlying history
// (the timeline's horizontal extent).
func (e *Explanation) NumEvents() int {
	n := 0
	for _, op := range e.Ops {
		if op.InvIndex+1 > n {
			n = op.InvIndex + 1
		}
		if !op.Pending && op.ResIndex+1 > n {
			n = op.ResIndex + 1
		}
	}
	return n
}

// ElementOps returns the matched surjection restricted to this history:
// ElementOps()[k] lists the indices (into Ops) of the operations absorbed
// by Witness[k]. On Sat this is the surjection required by H ⊑CAL T
// (Definition 5); on Unsat/Unknown it covers only the partial witness.
//
// The mapping is reconstructed positionally: linearization respects the
// real-time order, and a thread's operations are totally ordered by it,
// so the i-th element mentioning thread t absorbed t's i-th operation.
func (e *Explanation) ElementOps() [][]int {
	next := make(map[history.ThreadID]int) // thread -> next unmatched index into byThread
	byThread := make(map[history.ThreadID][]int)
	for i, op := range e.Ops {
		byThread[op.Thread] = append(byThread[op.Thread], i)
	}
	out := make([][]int, len(e.Witness))
	for k, el := range e.Witness {
		idx := make([]int, 0, len(el.Ops))
		for _, top := range el.Ops {
			seq := byThread[top.Thread]
			if p := next[top.Thread]; p < len(seq) {
				idx = append(idx, seq[p])
				next[top.Thread] = p + 1
			}
		}
		out[k] = idx
	}
	return out
}

// ElementOf returns, for every operation, the index of the witness
// element that absorbed it, or -1 for operations outside the witness
// (stuck or dropped).
func (e *Explanation) ElementOf() []int {
	out := make([]int, len(e.Ops))
	for i := range out {
		out[i] = -1
	}
	for k, idx := range e.ElementOps() {
		for _, i := range idx {
			out[i] = k
		}
	}
	return out
}

// Stuck returns the indices of completed operations the witness does not
// cover, in invocation order. On Unsat these are the operations the
// deepest search path failed to linearize; the first entry is the first
// blocked operation. Empty on Sat.
func (e *Explanation) Stuck() []int {
	var out []int
	for i, el := range e.ElementOf() {
		if el < 0 && !e.Ops[i].Pending {
			out = append(out, i)
		}
	}
	return out
}

// FirstBlocked returns the index of the first completed operation the
// witness does not cover, or -1 when every completed operation is
// explained (Sat).
func (e *Explanation) FirstBlocked() int {
	if s := e.Stuck(); len(s) > 0 {
		return s[0]
	}
	return -1
}

// DroppedIdx returns the indices of pending operations outside the
// witness — on Sat, exactly the invocations the chosen completion
// removed (Definition 2).
func (e *Explanation) DroppedIdx() []int {
	var out []int
	for i, el := range e.ElementOf() {
		if el < 0 && e.Ops[i].Pending {
			out = append(out, i)
		}
	}
	return out
}
