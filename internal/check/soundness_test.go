package check

import (
	"context"
	"math/rand"
	"testing"

	"calgo/internal/history"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// TestWitnessSoundness: whenever CAL accepts a complete history, the
// returned witness must itself be admitted by the specification and agreed
// with by the history — the two halves of Definition 6.
func TestWitnessSoundness(t *testing.T) {
	e := spec.NewExchanger(objE)
	st := spec.NewStack(objS)
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if seed%2 == 0 {
			h := genExchangerHistory(rng, 1+rng.Intn(8))
			r, err := CAL(context.Background(), h, e)
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK {
				t.Fatalf("seed %d: valid history rejected: %s", seed, r.Reason)
			}
			if _, err := spec.Accepts(e, r.Witness); err != nil {
				t.Fatalf("seed %d: witness not admitted: %v", seed, err)
			}
			if err := trace.Agrees(h, r.Witness); err != nil {
				t.Fatalf("seed %d: history disagrees with witness: %v", seed, err)
			}
		} else {
			h := genStackHistory(rng, 1+rng.Intn(3), 4+rng.Intn(10))
			r, err := CAL(context.Background(), h, st)
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK {
				t.Fatalf("seed %d: valid stack history rejected: %s", seed, r.Reason)
			}
			if _, err := spec.Accepts(st, r.Witness); err != nil {
				t.Fatalf("seed %d: witness not admitted: %v", seed, err)
			}
			if err := trace.Agrees(h, r.Witness); err != nil {
				t.Fatalf("seed %d: history disagrees with witness: %v", seed, err)
			}
		}
	}
}

// TestVerdictInvariantUnderSameKindSwaps: swapping adjacent same-kind
// actions of different threads preserves the real-time order and hence
// the CAL verdict — valid and corrupted histories alike.
func TestVerdictInvariantUnderSameKindSwaps(t *testing.T) {
	e := spec.NewExchanger(objE)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := genExchangerHistory(rng, 1+rng.Intn(6))
		if rng.Intn(2) == 0 && len(h) > 0 { // corrupt half the runs
			i := rng.Intn(len(h))
			if h[i].IsRes() {
				h[i].Ret = history.Pair(rng.Intn(2) == 0, int64(rng.Intn(5)))
			}
		}
		base, err := CAL(context.Background(), h, e)
		if err != nil {
			t.Fatal(err)
		}
		mut := append(h[:0:0], h...)
		for k := 0; k < 6; k++ {
			i := rng.Intn(len(mut) - 1)
			a, b := mut[i], mut[i+1]
			if a.Thread != b.Thread && a.Kind == b.Kind {
				mut[i], mut[i+1] = b, a
			}
		}
		got, err := CAL(context.Background(), mut, e)
		if err != nil {
			t.Fatal(err)
		}
		if got.OK != base.OK {
			t.Fatalf("seed %d: verdict changed %v -> %v after same-kind swaps\nbase %v\nmut  %v",
				seed, base.OK, got.OK, h, mut)
		}
	}
}

// TestDegenerateWidthOne: with a single thread every history is sequential
// and CAL degenerates to spec replay.
func TestDegenerateWidthOne(t *testing.T) {
	e := spec.NewExchanger(objE)
	h := genExchangerHistory(rand.New(rand.NewSource(3)), 5)
	// Filter to thread 1's ops only — all-fail singletons.
	single := h.ByThread(h.Threads()[0])
	r, err := CAL(context.Background(), single, e)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Linearizable(context.Background(), single, e)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK != lin.OK {
		t.Error("single-thread CAL and linearizability must coincide")
	}
}
