package check

import (
	"fmt"

	"calgo/internal/trace"
)

// Verdict is the three-valued outcome of a resource-bounded check. A
// search that exhausts its wall-clock deadline, its state budget, or its
// memoization-memory budget — or is cancelled — reports Unknown instead of
// hanging, panicking, or pretending to a boolean answer it never computed.
type Verdict uint8

const (
	// Unsat: the search space was exhausted and no completion of the
	// history agrees with any admitted CA-trace.
	Unsat Verdict = iota
	// Sat: a witness CA-trace was found.
	Sat
	// Unknown: the search was cut short by cancellation, a deadline, or a
	// budget; Result.Unknown carries the cause and frontier statistics.
	Unknown
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Sat:
		return "Sat"
	case Unsat:
		return "Unsat"
	case Unknown:
		return "Unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// Frontier summarizes how far an interrupted search got — enough to
// diagnose whether a retry with a bigger budget is promising or the
// history is hopelessly exponential.
type Frontier struct {
	// BestLinearized is the most operations any explored path linearized.
	BestLinearized int
	// TotalOps is the number of operations in the history.
	TotalOps int
	// States is the number of distinct search states visited.
	States int
	// MemoHits counts nodes pruned by memoization.
	MemoHits int
	// MemoBytes approximates the memoization table's key footprint.
	MemoBytes int
	// Elements counts CA-element linearization attempts (the unit of
	// search work between state-node visits).
	Elements int
}

// String renders the frontier statistics.
func (f Frontier) String() string {
	return fmt.Sprintf("linearized %d/%d ops, %d states, %d element attempts, %d memo hits, ~%d memo bytes",
		f.BestLinearized, f.TotalOps, f.States, f.Elements, f.MemoHits, f.MemoBytes)
}

// UnknownInfo explains an Unknown verdict.
type UnknownInfo struct {
	// Cause is the abort reason: ErrBound, ErrMemoBudget,
	// context.DeadlineExceeded or context.Canceled.
	Cause error
	// Reason is a human-readable rendering of Cause.
	Reason string
	// Frontier summarizes how far the search got.
	Frontier Frontier
	// PartialWitness is the CA-trace prefix of the deepest linearization
	// reached — a diagnostic lead, not a proof of anything.
	PartialWitness trace.Trace
}
