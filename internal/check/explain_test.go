package check

import (
	"context"
	"testing"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// TestExplanationSatSurjection pins the matched surjection on fig3 H1:
// every operation maps to exactly one witness element, the swap pair
// shares an element, and the failed exchange sits alone.
func TestExplanationSatSurjection(t *testing.T) {
	r := mustCAL(t, fig3H1(), spec.NewExchanger(objE))
	ex := r.Explanation
	if ex == nil || ex.Verdict != Sat {
		t.Fatalf("explanation = %+v, want Sat", ex)
	}
	if len(ex.Ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(ex.Ops))
	}
	if ex.NumEvents() != 6 {
		t.Errorf("NumEvents = %d, want 6", ex.NumEvents())
	}
	elems := ex.ElementOps()
	if len(elems) != len(r.Witness) {
		t.Fatalf("ElementOps has %d entries, want %d", len(elems), len(r.Witness))
	}
	covered := 0
	for k, idx := range elems {
		if len(idx) != r.Witness[k].Size() {
			t.Errorf("element %d absorbed %d ops, element has %d", k, len(idx), r.Witness[k].Size())
		}
		covered += len(idx)
		// Each absorbed op must actually match the element's operations.
		for j, i := range idx {
			top := r.Witness[k].Ops[j]
			op := ex.Ops[i]
			if op.Thread != top.Thread || op.Object != top.Object || op.Method != top.Method || op.Arg != top.Arg {
				t.Errorf("element %d op %d: surjection mapped %v to %v", k, j, top, op)
			}
		}
	}
	if covered != 3 {
		t.Errorf("surjection covers %d ops, want all 3", covered)
	}
	if got := ex.Stuck(); len(got) != 0 {
		t.Errorf("Stuck() = %v on Sat, want empty", got)
	}
	if got := ex.FirstBlocked(); got != -1 {
		t.Errorf("FirstBlocked() = %d on Sat, want -1", got)
	}
	byOp := ex.ElementOf()
	for i, el := range byOp {
		if el < 0 {
			t.Errorf("op %d unmapped on Sat", i)
		}
	}
}

// TestExplanationUnsatFirstBlocked: a lone "successful" exchange can never
// linearize, so it is the first (and only) blocked operation.
func TestExplanationUnsatFirstBlocked(t *testing.T) {
	r := mustCAL(t, unsatExchange(), spec.NewExchanger(objE))
	if r.Verdict != Unsat {
		t.Fatalf("verdict = %v, want Unsat", r.Verdict)
	}
	ex := r.Explanation
	if ex == nil || ex.Verdict != Unsat {
		t.Fatalf("explanation = %+v, want Unsat", ex)
	}
	if got := ex.Stuck(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Stuck() = %v, want [0]", got)
	}
	if got := ex.FirstBlocked(); got != 0 {
		t.Errorf("FirstBlocked() = %d, want 0", got)
	}
}

// TestExplanationUnsatPartialWitness: on a history where the search
// linearizes a prefix before getting stuck, the explanation's witness
// covers exactly the linearized ops and Stuck lists the rest.
func TestExplanationUnsatPartialWitness(t *testing.T) {
	// A clean swap followed by a lone success: the swap linearizes, the
	// tail can't.
	h := history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		inv(2, objE, spec.MethodExchange, history.Int(4)),
		res(1, objE, spec.MethodExchange, history.Pair(true, 4)),
		res(2, objE, spec.MethodExchange, history.Pair(true, 3)),
		inv(3, objE, spec.MethodExchange, history.Int(7)),
		res(3, objE, spec.MethodExchange, history.Pair(true, 9)),
	}
	r := mustCAL(t, h, spec.NewExchanger(objE))
	if r.Verdict != Unsat {
		t.Fatalf("verdict = %v, want Unsat", r.Verdict)
	}
	ex := r.Explanation
	if len(ex.Witness) == 0 {
		t.Fatal("no partial witness retained")
	}
	stuck := ex.Stuck()
	if len(stuck) != 1 || stuck[0] != 2 {
		t.Errorf("Stuck() = %v, want [2] (the impossible exchange)", stuck)
	}
	if got := ex.FirstBlocked(); got != 2 {
		t.Errorf("FirstBlocked() = %d, want 2", got)
	}
}

// TestExplanationDropped: a pending invocation the completion removes is
// reported by index.
func TestExplanationDropped(t *testing.T) {
	h := history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		inv(2, objE, spec.MethodExchange, history.Int(4)),
		res(1, objE, spec.MethodExchange, history.Pair(true, 4)),
		res(2, objE, spec.MethodExchange, history.Pair(true, 3)),
		inv(3, objE, spec.MethodExchange, history.Int(7)),
	}
	r := mustCAL(t, h, spec.NewExchanger(objE))
	if !r.OK {
		t.Fatalf("want Sat, got %+v", r)
	}
	ex := r.Explanation
	if got := ex.DroppedIdx(); len(got) != 1 || got[0] != 2 {
		// Depending on the resolver the pending op may instead be completed
		// into the witness; either way no completed op may be unexplained.
		if len(r.Dropped) != len(got) {
			t.Errorf("DroppedIdx() = %v, Result.Dropped = %v", got, r.Dropped)
		}
	}
	if got := ex.Stuck(); len(got) != 0 {
		t.Errorf("Stuck() = %v on Sat, want empty", got)
	}
}

// TestExplanationAlwaysPresent: every nil-error verdict carries one.
func TestExplanationAlwaysPresent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := CAL(ctx, fig3H1(), spec.NewExchanger(objE))
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Unknown || r.Explanation == nil || r.Explanation.Verdict != Unknown {
		t.Fatalf("cancelled check: verdict %v explanation %+v", r.Verdict, r.Explanation)
	}
}
