package check

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/spec"
)

// unsatExchange is a complete history no exchanger trace admits: a lone
// operation claiming a successful exchange with a partner that does not
// exist.
func unsatExchange() history.History {
	return history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		res(1, objE, spec.MethodExchange, history.Pair(true, 9)),
	}
}

func kinds(events []obs.Event) map[obs.EventKind]int {
	m := make(map[obs.EventKind]int)
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

// TestTracerHookOrdering pins the span contract of the tracer hooks:
// SearchStart is the first event and precedes every NodeExpand, SearchEnd
// is the last, and on an exhaustive (Unsat) search every ElementAdmit is
// balanced by a Backtrack at the same depth.
func TestTracerHookOrdering(t *testing.T) {
	f := obs.NewFlightRecorder(1 << 16)
	r, err := CAL(context.Background(), unsatExchange(), spec.NewExchanger(objE), WithTracer(f))
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Unsat {
		t.Fatalf("verdict = %v, want Unsat", r.Verdict)
	}
	events := f.Events()
	if len(events) < 3 {
		t.Fatalf("only %d events recorded", len(events))
	}
	if events[0].Kind != obs.EvSearchStart {
		t.Fatalf("first event = %s, want SearchStart", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != obs.EvSearchEnd || last.Verdict != "Unsat" {
		t.Fatalf("last event = %+v, want SearchEnd/Unsat", last)
	}
	for _, e := range events[1 : len(events)-1] {
		if e.Kind == obs.EvSearchStart || e.Kind == obs.EvSearchEnd {
			t.Fatalf("interior %s event: %+v", e.Kind, e)
		}
	}
	k := kinds(events)
	if k[obs.EvNodeExpand] == 0 {
		t.Fatal("no NodeExpand events")
	}
	if k[obs.EvElementAdmit] != k[obs.EvBacktrack] {
		t.Fatalf("admits %d != backtracks %d on an exhaustive search",
			k[obs.EvElementAdmit], k[obs.EvBacktrack])
	}
	// NodeExpand carries the running state count; it must be monotonic.
	var prev int64
	for _, e := range events {
		if e.Kind != obs.EvNodeExpand {
			continue
		}
		if e.Arg <= prev {
			t.Fatalf("NodeExpand states not monotonic: %d after %d", e.Arg, prev)
		}
		prev = e.Arg
	}
}

// TestTracerSatLeavesOpenSpans: on Sat the search returns from inside the
// admitted elements, so admits exceed backtracks by exactly the witness
// length.
func TestTracerSatLeavesOpenSpans(t *testing.T) {
	f := obs.NewFlightRecorder(1 << 16)
	r, err := CAL(context.Background(), fig3H1(), spec.NewExchanger(objE), WithTracer(f))
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("fig3H1 must be Sat: %+v", r)
	}
	k := kinds(f.Events())
	if open := k[obs.EvElementAdmit] - k[obs.EvBacktrack]; open != len(r.Witness) {
		t.Fatalf("open spans = %d, want witness length %d", open, len(r.Witness))
	}
}

// TestTracerDoesNotChangeVerdict: attaching observability must be
// behaviour-preserving.
func TestTracerDoesNotChangeVerdict(t *testing.T) {
	for name, h := range map[string]history.History{"sat": fig3H1(), "unsat": unsatExchange()} {
		plain := mustCAL(t, h, spec.NewExchanger(objE))
		traced := mustCAL(t, h, spec.NewExchanger(objE),
			WithTracer(obs.NewFlightRecorder(8)), WithMetrics(obs.NewMetrics()))
		if plain.Verdict != traced.Verdict || plain.States != traced.States || plain.MemoHits != traced.MemoHits {
			t.Errorf("%s: traced run diverged: %+v vs %+v", name, plain, traced)
		}
	}
}

// TestMetricsTotalsMatchResult: the registry totals merged at the end of
// a check agree with the Result the caller gets.
func TestMetricsTotalsMatchResult(t *testing.T) {
	m := obs.NewMetrics()
	r, err := CAL(context.Background(), fig3H1(), spec.NewExchanger(objE), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("check.states").Value(); got != int64(r.States) {
		t.Errorf("check.states = %d, want %d", got, r.States)
	}
	if got := m.Counter("check.memo_hits").Value(); got != int64(r.MemoHits) {
		t.Errorf("check.memo_hits = %d, want %d", got, r.MemoHits)
	}
	if got := m.Counter("check.checks").Value(); got != 1 {
		t.Errorf("check.checks = %d, want 1", got)
	}
	if got := m.Counter("check.verdict.sat").Value(); got != 1 {
		t.Errorf("check.verdict.sat = %d, want 1", got)
	}
	if got := m.Histogram("check.element_size").Count(); got != int64(len(r.Witness)) {
		// fig3H1's witness admits exactly its elements once each: the
		// exchanger spec rejects every other candidate before admission.
		t.Errorf("element_size count = %d, want %d", got, len(r.Witness))
	}
	if m.Counter("check.elements").Value() == 0 {
		t.Error("check.elements not counted")
	}
}

// TestCheckerReuse: one Checker, many checks, shared registry.
func TestCheckerReuse(t *testing.T) {
	m := obs.NewMetrics()
	c, err := NewChecker(spec.NewExchanger(objE), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r, err := c.Check(context.Background(), fig3H1())
		if err != nil || !r.OK {
			t.Fatalf("check %d: %v %+v", i, err, r)
		}
	}
	if got := m.Counter("check.checks").Value(); got != 3 {
		t.Errorf("check.checks = %d, want 3", got)
	}
	if got := m.Counter("check.verdict.sat").Value(); got != 3 {
		t.Errorf("check.verdict.sat = %d, want 3", got)
	}
}

// TestProgressFinalReport: a progress-configured check always delivers a
// final report whose state count matches the search total, even when the
// search finishes well inside one interval.
func TestProgressFinalReport(t *testing.T) {
	var finals atomic.Int64
	var lastStates atomic.Int64
	r, err := CAL(context.Background(), fig3H1(), spec.NewExchanger(objE),
		WithProgress(time.Hour, func(p obs.Progress) {
			if p.Final {
				finals.Add(1)
				lastStates.Store(p.States)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if finals.Load() != 1 {
		t.Fatalf("final reports = %d, want 1", finals.Load())
	}
	if got := lastStates.Load(); got != int64(r.States) {
		t.Errorf("final states = %d, want %d", got, r.States)
	}
}

// TestCheckManySharedProgress: the batch shares one reporter aggregating
// every worker's states.
func TestCheckManySharedProgress(t *testing.T) {
	hs := []history.History{fig3H1(), fig3H2(), fig3H1()}
	var finals atomic.Int64
	var total atomic.Int64
	results, err := CheckMany(context.Background(), hs, spec.NewExchanger(objE),
		WithParallelism(2),
		WithProgress(time.Hour, func(p obs.Progress) {
			if p.Final {
				finals.Add(1)
				total.Store(p.States)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, r := range results {
		want += int64(r.States)
	}
	if finals.Load() != 1 {
		t.Fatalf("final reports = %d, want 1 shared reporter", finals.Load())
	}
	if total.Load() != want {
		t.Errorf("aggregated states = %d, want %d", total.Load(), want)
	}
}

// TestNilObsAllocGuard pins the allocation count of a check with
// observability disabled. The nil-tracer/nil-metrics fast path must cost
// one branch per hook site and nothing else; if this ceiling is exceeded,
// an obs hook started allocating on the hot path.
func TestNilObsAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	c, err := NewChecker(spec.NewExchanger(objE))
	if err != nil {
		t.Fatal(err)
	}
	h := fig3H1()
	ctx := context.Background()
	base := testing.AllocsPerRun(200, func() {
		if _, err := c.Check(ctx, h); err != nil {
			t.Fatal(err)
		}
	})
	traced := testing.AllocsPerRun(200, func() {
		r, err := CAL(ctx, h, spec.NewExchanger(objE),
			WithTracer(obs.NewFlightRecorder(64)), WithMetrics(obs.NewMetrics()))
		if err != nil || !r.OK {
			t.Fatal(err)
		}
	})
	// The disabled path's absolute ceiling: the searcher's fixed setup
	// allocations for a 6-op history. Raise only with a hot-path audit.
	const ceiling = 40
	if base > ceiling {
		t.Errorf("nil-obs check allocates %.0f objects/run, ceiling %d", base, ceiling)
	}
	if base >= traced {
		t.Logf("note: traced run (%.0f allocs) not above nil-obs run (%.0f)", traced, base)
	}
}
