package check

import (
	"context"
	"errors"
	"testing"

	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/spec"
)

const engObj = history.ObjectID("q")

func engineHistory(t *testing.T, ops []history.Op) history.History {
	t.Helper()
	h, err := history.FromOps(ops)
	if err != nil {
		t.Fatalf("FromOps: %v", err)
	}
	return h
}

func engOp(th int, m history.Method, arg, ret history.Value, inv, res int) history.Op {
	return history.Op{Thread: history.ThreadID(th), Object: engObj, Method: m, Arg: arg, Ret: ret, InvIndex: inv, ResIndex: res}
}

func satQueueHistory(t *testing.T) history.History {
	return engineHistory(t, []history.Op{
		engOp(1, spec.MethodEnq, history.Int(1), history.Bool(true), 0, 1),
		engOp(1, spec.MethodEnq, history.Int(2), history.Bool(true), 2, 3),
		engOp(1, spec.MethodDeq, history.Unit(), history.Pair(true, 1), 4, 5),
		engOp(1, spec.MethodDeq, history.Unit(), history.Pair(true, 2), 6, 7),
	})
}

func unsatQueueHistory(t *testing.T) history.History {
	return engineHistory(t, []history.Op{
		engOp(1, spec.MethodEnq, history.Int(1), history.Bool(true), 0, 1),
		engOp(1, spec.MethodEnq, history.Int(2), history.Bool(true), 2, 3),
		engOp(1, spec.MethodDeq, history.Unit(), history.Pair(true, 2), 4, 5),
		engOp(1, spec.MethodDeq, history.Unit(), history.Pair(true, 1), 6, 7),
	})
}

// TestEngineAutoDispatchesMonitor pins the fast path: eligible histories
// are decided by the monitor (Engine records it, the dispatch counter
// moves, no states are searched), with verdicts matching the DFS.
func TestEngineAutoDispatchesMonitor(t *testing.T) {
	sp := spec.NewQueue(engObj)
	m := obs.NewMetrics()
	c, err := NewChecker(sp, WithEngine(EngineAuto), WithMetrics(m))
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	res, err := c.Check(context.Background(), satQueueHistory(t))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Sat || res.Engine != EngineMonitor || res.States != 0 {
		t.Fatalf("got verdict=%s engine=%s states=%d, want Sat/monitor/0", res.Verdict, res.Engine, res.States)
	}
	if res.Explanation == nil {
		t.Fatal("monitor-decided Result must still carry an Explanation")
	}
	res, err = c.Check(context.Background(), unsatQueueHistory(t))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Unsat || res.Engine != EngineMonitor {
		t.Fatalf("got verdict=%s engine=%s, want Unsat/monitor", res.Verdict, res.Engine)
	}
	if res.Reason == "" {
		t.Fatal("monitor Unsat must carry a Reason")
	}
	if got := m.Counter("monitor.dispatch").Value(); got != 2 {
		t.Fatalf("monitor.dispatch = %d, want 2", got)
	}
	if got := m.Counter("check.checks").Value(); got != 2 {
		t.Fatalf("check.checks = %d, want 2", got)
	}
}

// TestEngineAutoFallsBackToDFS pins the punt path: a spec with no
// monitor is decided by the DFS with a witness, and the fallback counter
// moves.
func TestEngineAutoFallsBackToDFS(t *testing.T) {
	sp := spec.NewRegister(engObj)
	h := engineHistory(t, []history.Op{
		engOp(1, "write", history.Int(7), history.Unit(), 0, 1),
		engOp(1, "read", history.Unit(), history.Int(7), 2, 3),
	})
	m := obs.NewMetrics()
	c, err := NewChecker(sp, WithEngine(EngineAuto), WithMetrics(m))
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	res, err := c.Check(context.Background(), h)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Sat || res.Engine != EngineDFS {
		t.Fatalf("got verdict=%s engine=%s, want Sat/dfs", res.Verdict, res.Engine)
	}
	if res.Witness == nil {
		t.Fatal("DFS fallback must still produce a witness")
	}
	if got := m.Counter("monitor.fallback").Value(); got != 1 {
		t.Fatalf("monitor.fallback = %d, want 1", got)
	}
}

// TestEngineMonitorForcedIneligible pins the forced-monitor contract:
// no fallback, Unknown with ErrMonitorIneligible.
func TestEngineMonitorForcedIneligible(t *testing.T) {
	sp := spec.NewRegister(engObj)
	h := engineHistory(t, []history.Op{
		engOp(1, "write", history.Int(7), history.Unit(), 0, 1),
	})
	c, err := NewChecker(sp, WithEngine(EngineMonitor))
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	res, err := c.Check(context.Background(), h)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Unknown || res.Unknown == nil || !errors.Is(res.Unknown.Cause, ErrMonitorIneligible) {
		t.Fatalf("got verdict=%s unknown=%+v, want Unknown/ErrMonitorIneligible", res.Verdict, res.Unknown)
	}
}

// TestEngineMonitorRejectsCAElements: the monitors decide classical
// linearizability only, so forcing them on a CA spec is a construction
// error unless elements are capped at 1.
func TestEngineMonitorRejectsCAElements(t *testing.T) {
	sp := spec.NewExchanger(engObj)
	if _, err := NewChecker(sp, WithEngine(EngineMonitor)); err == nil {
		t.Fatal("NewChecker(exchanger, EngineMonitor) should fail: elements exceed size 1")
	}
	if _, err := NewChecker(sp, WithEngine(EngineMonitor), WithElementCap(1)); err != nil {
		t.Fatalf("capped construction should succeed, got %v", err)
	}
	// EngineAuto on a CA spec never dispatches, it silently searches.
	m := obs.NewMetrics()
	c, err := NewChecker(sp, WithEngine(EngineAuto), WithMetrics(m))
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	h := engineHistory(t, []history.Op{
		engOp(1, "exchange", history.Int(1), history.Pair(true, 2), 0, 2),
		engOp(2, "exchange", history.Int(2), history.Pair(true, 1), 1, 3),
	})
	res, err := c.Check(context.Background(), h)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Engine != EngineDFS {
		t.Fatalf("engine = %s, want dfs (CA specs never dispatch)", res.Engine)
	}
	if got := m.Counter("monitor.dispatch").Value(); got != 0 {
		t.Fatalf("monitor.dispatch = %d, want 0", got)
	}
}

// TestEngineDefaultIsDFS: the zero-value engine must preserve the
// pre-engine behavior bit for bit.
func TestEngineDefaultIsDFS(t *testing.T) {
	sp := spec.NewQueue(engObj)
	c, err := NewChecker(sp)
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	res, err := c.Check(context.Background(), satQueueHistory(t))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Engine != EngineDFS || res.Witness == nil || res.States == 0 {
		t.Fatalf("default engine: engine=%s witness=%v states=%d, want dfs search", res.Engine, res.Witness, res.States)
	}
}

// TestParseEngine round-trips the flag spellings.
func TestParseEngine(t *testing.T) {
	for _, e := range []Engine{EngineDFS, EngineAuto, EngineMonitor} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Fatal("ParseEngine should reject unknown engines")
	}
}

// TestEngineStackInconclusiveFallsBack uses a contended-stack-shaped
// history on the plain stack spec to reach the monitor's Inconclusive /
// Ineligible paths and pins that auto still returns the DFS verdict.
func TestEngineStackInconclusiveFallsBack(t *testing.T) {
	sp := spec.Stack{Obj: engObj}
	// Same value pushed twice: ambiguous, so the monitor is ineligible
	// and the DFS must decide.
	h := engineHistory(t, []history.Op{
		engOp(1, spec.MethodPush, history.Int(1), history.Bool(true), 0, 1),
		engOp(1, spec.MethodPop, history.Unit(), history.Pair(true, 1), 2, 3),
		engOp(1, spec.MethodPush, history.Int(1), history.Bool(true), 4, 5),
		engOp(1, spec.MethodPop, history.Unit(), history.Pair(true, 1), 6, 7),
	})
	c, err := NewChecker(sp, WithEngine(EngineAuto))
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	res, err := c.Check(context.Background(), h)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != Sat || res.Engine != EngineDFS {
		t.Fatalf("got verdict=%s engine=%s, want Sat decided by dfs fallback", res.Verdict, res.Engine)
	}
}
