package check

import (
	"context"
	"errors"
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const (
	objE history.ObjectID = "E"
	objS history.ObjectID = "S"
)

func inv(t history.ThreadID, o history.ObjectID, f history.Method, arg history.Value) history.Event {
	return history.Inv(t, o, f, arg)
}

func res(t history.ThreadID, o history.ObjectID, f history.Method, ret history.Value) history.Event {
	return history.Res(t, o, f, ret)
}

func fig3H1() history.History {
	return history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		inv(2, objE, spec.MethodExchange, history.Int(4)),
		inv(3, objE, spec.MethodExchange, history.Int(7)),
		res(1, objE, spec.MethodExchange, history.Pair(true, 4)),
		res(2, objE, spec.MethodExchange, history.Pair(true, 3)),
		res(3, objE, spec.MethodExchange, history.Pair(false, 7)),
	}
}

func fig3H2() history.History {
	return history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		inv(2, objE, spec.MethodExchange, history.Int(4)),
		res(1, objE, spec.MethodExchange, history.Pair(true, 4)),
		res(2, objE, spec.MethodExchange, history.Pair(true, 3)),
		inv(3, objE, spec.MethodExchange, history.Int(7)),
		res(3, objE, spec.MethodExchange, history.Pair(false, 7)),
	}
}

func mustCAL(t *testing.T, h history.History, sp spec.Spec, opts ...Option) Result {
	t.Helper()
	r, err := CAL(context.Background(), h, sp, opts...)
	if err != nil {
		t.Fatalf("CAL: %v", err)
	}
	return r
}

func TestCALFig3Histories(t *testing.T) {
	e := spec.NewExchanger(objE)
	for name, h := range map[string]history.History{"H1": fig3H1(), "H2": fig3H2()} {
		r := mustCAL(t, h, e)
		if !r.OK {
			t.Errorf("%s should be CA-linearizable: %s", name, r.Reason)
			continue
		}
		// The witness must be admitted by the spec and agreed with by the
		// history.
		if _, err := spec.Accepts(e, r.Witness); err != nil {
			t.Errorf("%s witness rejected by spec: %v", name, err)
		}
		if err := trace.Agrees(h, r.Witness); err != nil {
			t.Errorf("%s does not agree with its own witness: %v", name, err)
		}
	}
}

func TestCALRejectsBadExchanges(t *testing.T) {
	e := spec.NewExchanger(objE)
	tests := []struct {
		name string
		h    history.History
	}{
		{"lone successful exchange", history.History{
			inv(1, objE, spec.MethodExchange, history.Int(3)),
			res(1, objE, spec.MethodExchange, history.Pair(true, 4)),
		}},
		{"non-overlapping swap", history.History{
			inv(1, objE, spec.MethodExchange, history.Int(3)),
			res(1, objE, spec.MethodExchange, history.Pair(true, 4)),
			inv(2, objE, spec.MethodExchange, history.Int(4)),
			res(2, objE, spec.MethodExchange, history.Pair(true, 3)),
		}},
		{"values do not cross", history.History{
			inv(1, objE, spec.MethodExchange, history.Int(3)),
			inv(2, objE, spec.MethodExchange, history.Int(4)),
			res(1, objE, spec.MethodExchange, history.Pair(true, 9)),
			res(2, objE, spec.MethodExchange, history.Pair(true, 3)),
		}},
		{"failed exchange wrong value", history.History{
			inv(1, objE, spec.MethodExchange, history.Int(3)),
			res(1, objE, spec.MethodExchange, history.Pair(false, 5)),
		}},
		{"three-way swap", history.History{
			inv(1, objE, spec.MethodExchange, history.Int(1)),
			inv(2, objE, spec.MethodExchange, history.Int(2)),
			inv(3, objE, spec.MethodExchange, history.Int(3)),
			res(1, objE, spec.MethodExchange, history.Pair(true, 2)),
			res(2, objE, spec.MethodExchange, history.Pair(true, 3)),
			res(3, objE, spec.MethodExchange, history.Pair(true, 1)),
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := mustCAL(t, tt.h, spec.NewExchanger(objE))
			if r.OK {
				t.Errorf("history should not be CA-linearizable:\n%v\nwitness: %s", tt.h, r.Witness)
			}
			if r.Reason == "" {
				t.Error("failed result must carry a reason")
			}
			_ = e
		})
	}
}

// TestSequentialSpecCannotExplainSwaps is the paper's §3 impossibility made
// executable: under classical linearizability (singleton elements only),
// the very histories the exchanger is designed to produce are rejected.
func TestSequentialSpecCannotExplainSwaps(t *testing.T) {
	e := spec.NewExchanger(objE)
	for name, h := range map[string]history.History{"H1": fig3H1(), "H2": fig3H2()} {
		r, err := Linearizable(context.Background(), h, e)
		if err != nil {
			t.Fatalf("Linearizable(%s): %v", name, err)
		}
		if r.OK {
			t.Errorf("%s must NOT be linearizable under a sequential reading; witness: %s", name, r.Witness)
		}
	}
	// Only all-fail histories survive a sequential reading.
	allFail := history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		inv(2, objE, spec.MethodExchange, history.Int(4)),
		res(1, objE, spec.MethodExchange, history.Pair(false, 3)),
		res(2, objE, spec.MethodExchange, history.Pair(false, 4)),
	}
	r, err := Linearizable(context.Background(), allFail, e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Errorf("all-fail history should be linearizable sequentially: %s", r.Reason)
	}
}

func TestCALEqualsSetLinearizable(t *testing.T) {
	h := fig3H1()
	a := mustCAL(t, h, spec.NewExchanger(objE))
	b, err := SetLinearizable(context.Background(), h, spec.NewExchanger(objE))
	if err != nil {
		t.Fatal(err)
	}
	if a.OK != b.OK {
		t.Error("CAL and SetLinearizable must agree")
	}
}

func TestCALStackHistories(t *testing.T) {
	st := spec.NewStack(objS)
	// Two overlapping pushes then two pops; both interleavings of the
	// pushes are possible, the pops pin down which one happened.
	h := history.History{
		inv(1, objS, spec.MethodPush, history.Int(10)),
		inv(2, objS, spec.MethodPush, history.Int(20)),
		res(1, objS, spec.MethodPush, history.Bool(true)),
		res(2, objS, spec.MethodPush, history.Bool(true)),
		inv(1, objS, spec.MethodPop, history.Unit()),
		res(1, objS, spec.MethodPop, history.Pair(true, 10)),
		inv(1, objS, spec.MethodPop, history.Unit()),
		res(1, objS, spec.MethodPop, history.Pair(true, 20)),
	}
	r := mustCAL(t, h, st)
	if !r.OK {
		t.Fatalf("stack history should be linearizable: %s", r.Reason)
	}
	// The witness must linearize push(20) before push(10).
	want := trace.Trace{
		spec.PushElement(objS, 2, 20, true),
		spec.PushElement(objS, 1, 10, true),
		spec.PopElement(objS, 1, true, 10),
		spec.PopElement(objS, 1, true, 20),
	}
	if !r.Witness.Equal(want) {
		t.Errorf("witness = %s, want %s", r.Witness, want)
	}

	// LIFO violation: non-overlapping pushes popped in FIFO order.
	bad := history.History{
		inv(1, objS, spec.MethodPush, history.Int(10)),
		res(1, objS, spec.MethodPush, history.Bool(true)),
		inv(1, objS, spec.MethodPush, history.Int(20)),
		res(1, objS, spec.MethodPush, history.Bool(true)),
		inv(1, objS, spec.MethodPop, history.Unit()),
		res(1, objS, spec.MethodPop, history.Pair(true, 10)),
	}
	if r := mustCAL(t, bad, st); r.OK {
		t.Error("FIFO pop order on a stack must be rejected")
	}
}

func TestCALPendingCompletion(t *testing.T) {
	e := spec.NewExchanger(objE)
	// t1 returned a successful swap with value 4, but t2 (who offered 4)
	// never responded: the checker must complete t2's operation.
	h := history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		inv(2, objE, spec.MethodExchange, history.Int(4)),
		res(1, objE, spec.MethodExchange, history.Pair(true, 4)),
	}
	r := mustCAL(t, h, e)
	if !r.OK {
		t.Fatalf("pending partner should be completable: %s", r.Reason)
	}
	if len(r.Dropped) != 0 {
		t.Errorf("t2 should be completed, not dropped: %v", r.Dropped)
	}
	if len(r.Witness) != 1 || r.Witness[0].Size() != 2 {
		t.Errorf("witness should be a single swap element: %s", r.Witness)
	}
}

func TestCALPendingDrop(t *testing.T) {
	e := spec.NewExchanger(objE)
	// A pending exchange that took no visible effect can be dropped.
	h := history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
	}
	r := mustCAL(t, h, e)
	if !r.OK {
		t.Fatalf("lone pending exchange should be CA-linearizable: %s", r.Reason)
	}
	if len(r.Dropped) != 1 {
		t.Errorf("expected the pending op to be dropped (or completed), got %v", r.Dropped)
	}
}

func TestCALPendingMustBeLinearized(t *testing.T) {
	st := spec.NewStack(objS)
	// The push never responded, but its value was popped: the completion
	// must extend the push, not drop it.
	h := history.History{
		inv(1, objS, spec.MethodPush, history.Int(42)),
		inv(2, objS, spec.MethodPop, history.Unit()),
		res(2, objS, spec.MethodPop, history.Pair(true, 42)),
	}
	r := mustCAL(t, h, st)
	if !r.OK {
		t.Fatalf("pending push must be completable: %s", r.Reason)
	}
	if len(r.Witness) != 2 {
		t.Errorf("witness should linearize push then pop: %s", r.Witness)
	}
	if len(r.Dropped) != 0 {
		t.Errorf("push must not be dropped: %v", r.Dropped)
	}
}

func TestCALCompleteOnly(t *testing.T) {
	h := history.History{inv(1, objE, spec.MethodExchange, history.Int(3))}
	_, err := CAL(context.Background(), h, spec.NewExchanger(objE), WithCompleteOnly())
	if err == nil || !strings.Contains(err.Error(), "pending") {
		t.Errorf("WithCompleteOnly should reject pending histories: %v", err)
	}
}

func TestCALIllFormed(t *testing.T) {
	h := history.History{res(1, objE, spec.MethodExchange, history.Int(3))}
	if _, err := CAL(context.Background(), h, spec.NewExchanger(objE)); err == nil {
		t.Error("ill-formed history must be an input error")
	}
}

func TestCALStateBound(t *testing.T) {
	h := fig3H1()
	r, err := CAL(context.Background(), h, spec.NewExchanger(objE), WithMaxStates(1))
	if err != nil {
		t.Fatalf("budget exhaustion must not be an error: %v", err)
	}
	if r.Verdict != Unknown || r.OK {
		t.Fatalf("verdict = %v (OK=%v), want Unknown", r.Verdict, r.OK)
	}
	if r.Unknown == nil || !errors.Is(r.Unknown.Cause, ErrBound) {
		t.Errorf("Unknown cause = %+v, want ErrBound", r.Unknown)
	}
	if r.Unknown != nil && r.Unknown.Frontier.TotalOps != len(h.Operations()) {
		t.Errorf("frontier TotalOps = %d, want %d", r.Unknown.Frontier.TotalOps, len(h.Operations()))
	}
}

func TestCALBadElementCap(t *testing.T) {
	if _, err := CAL(context.Background(), history.History{}, spec.NewExchanger(objE), WithElementCap(-1)); err == nil {
		t.Error("negative element cap must be rejected")
	}
}

func TestCALEmptyHistory(t *testing.T) {
	r := mustCAL(t, history.History{}, spec.NewExchanger(objE))
	if !r.OK || len(r.Witness) != 0 {
		t.Errorf("empty history: %+v", r)
	}
}

func TestCALMemoAblationAgrees(t *testing.T) {
	// With and without memoization the verdict must be identical.
	for _, h := range []history.History{fig3H1(), fig3H2()} {
		a := mustCAL(t, h, spec.NewExchanger(objE))
		b := mustCAL(t, h, spec.NewExchanger(objE), WithoutMemo())
		if a.OK != b.OK {
			t.Errorf("memo ablation changed verdict: %v vs %v", a.OK, b.OK)
		}
		if b.MemoHits != 0 {
			t.Error("memo disabled but hits recorded")
		}
	}
}

func TestCALProductHistory(t *testing.T) {
	p := spec.MustProduct(spec.NewStack(objS), spec.NewExchanger(objE))
	h := history.History{
		inv(1, objS, spec.MethodPush, history.Int(5)),
		inv(2, objE, spec.MethodExchange, history.Int(1)),
		inv(3, objE, spec.MethodExchange, history.Int(2)),
		res(1, objS, spec.MethodPush, history.Bool(true)),
		res(2, objE, spec.MethodExchange, history.Pair(true, 2)),
		res(3, objE, spec.MethodExchange, history.Pair(true, 1)),
		inv(1, objS, spec.MethodPop, history.Unit()),
		res(1, objS, spec.MethodPop, history.Pair(true, 5)),
	}
	r := mustCAL(t, h, p)
	if !r.OK {
		t.Fatalf("product history should be CA-linearizable: %s", r.Reason)
	}
}

func TestCALWitnessInvariants(t *testing.T) {
	// For any accepting run, the witness must be spec-admitted and agreed
	// with by the completed history (soundness of the checker).
	e := spec.NewExchanger(objE)
	h := fig3H2()
	r := mustCAL(t, h, e)
	if !r.OK {
		t.Fatal(r.Reason)
	}
	if _, err := spec.Accepts(e, r.Witness); err != nil {
		t.Errorf("witness not admitted: %v", err)
	}
	if err := trace.Agrees(h, r.Witness); err != nil {
		t.Errorf("history does not agree with witness: %v", err)
	}
	if r.States == 0 {
		t.Error("search should visit at least one state")
	}
}
