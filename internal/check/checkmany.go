package check

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// WithWorkers sets the number of concurrent checker goroutines used by
// CheckMany. 0 (the default) means GOMAXPROCS. It has no effect on
// single-history entry points.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// CheckMany decides concurrency-aware linearizability for a batch of
// recorded histories against the same specification, fanning the
// per-history checks across a worker pool (WithWorkers, default
// GOMAXPROCS). Each history is checked independently with its own
// searcher, so results[i] corresponds to histories[i] exactly as if
// CALContext had been called on it alone.
//
// The returned error joins the per-history input errors (each wrapped
// with its index); results[i] is the zero Result for failed inputs.
// Cancellation is reported in-band per history as Verdict == Unknown,
// matching CALContext.
func CheckMany(ctx context.Context, histories []history.History, sp spec.Spec, opts ...Option) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(histories))
	if len(histories) == 0 {
		return results, nil
	}
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(histories) {
		workers = len(histories)
	}

	errs := make([]error, len(histories))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(histories) {
					return
				}
				res, err := CALContext(ctx, histories[i], sp, opts...)
				if err != nil {
					errs[i] = fmt.Errorf("history %d: %w", i, err)
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}
