package check

import (
	"context"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// WithParallelism sets the number of concurrent checker goroutines used
// by CheckMany. 0 (the default) means GOMAXPROCS. It has no effect on
// single-history entry points.
func WithParallelism(n int) Option { return func(c *config) { c.workers = n } }

// CheckMany decides concurrency-aware linearizability for a batch of
// recorded histories against the same specification. It is shorthand for
// NewChecker followed by Checker.CheckMany; batch callers that check
// repeatedly should build the Checker once instead.
func CheckMany(ctx context.Context, histories []history.History, sp spec.Spec, opts ...Option) ([]Result, error) {
	c, err := NewChecker(sp, opts...)
	if err != nil {
		return nil, err
	}
	return c.CheckMany(ctx, histories)
}
