package check

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// genStackHistory produces a history by simulating a real concurrent stack
// execution: ops are generated against a ground-truth stack with random
// interleaving of inv/res boundaries, so the result is linearizable by
// construction.
func genStackHistory(rng *rand.Rand, nThreads, nOps int) history.History {
	type pending struct {
		t   history.ThreadID
		f   history.Method
		arg history.Value
		ret history.Value
	}
	var h history.History
	var stack []int64
	busy := make(map[history.ThreadID]*pending)
	free := make([]history.ThreadID, 0, nThreads)
	for i := 1; i <= nThreads; i++ {
		free = append(free, history.ThreadID(i))
	}
	done := 0
	next := int64(1)
	for done < nOps || len(busy) > 0 {
		// Either start a new op (take effect immediately at invocation,
		// one legal choice among many) or retire a pending one.
		if len(free) > 0 && done < nOps && (len(busy) == 0 || rng.Intn(2) == 0) {
			t := free[len(free)-1]
			free = free[:len(free)-1]
			p := &pending{t: t}
			if rng.Intn(2) == 0 {
				p.f = spec.MethodPush
				p.arg = history.Int(next)
				stack = append(stack, next)
				next++
				p.ret = history.Bool(true)
			} else {
				p.f = spec.MethodPop
				p.arg = history.Unit()
				if len(stack) == 0 {
					p.ret = history.Pair(false, 0)
				} else {
					p.ret = history.Pair(true, stack[len(stack)-1])
					stack = stack[:len(stack)-1]
				}
			}
			busy[t] = p
			h = append(h, history.Inv(t, objS, p.f, p.arg))
			done++
			continue
		}
		// Retire a random pending op.
		for t, p := range busy {
			h = append(h, history.Res(t, objS, p.f, p.ret))
			delete(busy, t)
			free = append(free, t)
			break
		}
	}
	return h
}

func TestCALAcceptsSimulatedStackExecutions(t *testing.T) {
	st := spec.NewStack(objS)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := genStackHistory(rng, 1+rng.Intn(4), 6+rng.Intn(14))
		r, err := CAL(context.Background(), h, st)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.OK {
			t.Fatalf("seed %d: valid execution rejected: %s\n%v", seed, r.Reason, h)
		}
	}
}

// Linearizing at invocation time is only ONE schedule; corrupting a return
// value must (almost always) break linearizability. We corrupt a successful
// pop's value to one never pushed, which is always a violation.
func TestCALRejectsCorruptedStackExecutions(t *testing.T) {
	st := spec.NewStack(objS)
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := genStackHistory(rng, 3, 12)
		corrupted := false
		for i, e := range h {
			if e.IsRes() && e.Method == spec.MethodPop && e.Ret.B {
				h[i].Ret = history.Pair(true, 999_999) // never pushed
				corrupted = true
				break
			}
		}
		if !corrupted {
			continue
		}
		r, err := CAL(context.Background(), h, st)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.OK {
			t.Fatalf("seed %d: corrupted execution accepted:\n%v\nwitness %s", seed, h, r.Witness)
		}
	}
}

// genExchangerHistory simulates a valid exchanger execution: pairs of
// overlapping exchanges swap, loners fail.
func genExchangerHistory(rng *rand.Rand, nRounds int) history.History {
	var h history.History
	tid := history.ThreadID(1)
	v := int64(1)
	for i := 0; i < nRounds; i++ {
		if rng.Intn(3) == 0 {
			t := tid
			tid++
			h = append(h,
				history.Inv(t, objE, spec.MethodExchange, history.Int(v)),
				history.Res(t, objE, spec.MethodExchange, history.Pair(false, v)))
			v++
			continue
		}
		t1, t2 := tid, tid+1
		tid += 2
		a, b := v, v+1
		v += 2
		h = append(h,
			history.Inv(t1, objE, spec.MethodExchange, history.Int(a)),
			history.Inv(t2, objE, spec.MethodExchange, history.Int(b)),
		)
		if rng.Intn(2) == 0 {
			h = append(h,
				history.Res(t1, objE, spec.MethodExchange, history.Pair(true, b)),
				history.Res(t2, objE, spec.MethodExchange, history.Pair(true, a)))
		} else {
			h = append(h,
				history.Res(t2, objE, spec.MethodExchange, history.Pair(true, a)),
				history.Res(t1, objE, spec.MethodExchange, history.Pair(true, b)))
		}
	}
	return h
}

func TestCALAcceptsSimulatedExchangerExecutions(t *testing.T) {
	e := spec.NewExchanger(objE)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := genExchangerHistory(rng, 2+rng.Intn(10))
		r, err := CAL(context.Background(), h, e)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.OK {
			t.Fatalf("seed %d: valid exchanger execution rejected: %s\n%v", seed, r.Reason, h)
		}
	}
}

// TestLinearizableEqualsElementCapOne_Quick: on arbitrary (possibly invalid)
// exchanger histories, Linearizable and CAL-with-cap-1 are the same check.
func TestLinearizableEqualsElementCapOne_Quick(t *testing.T) {
	e := spec.NewExchanger(objE)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := genExchangerHistory(rng, 1+rng.Intn(6))
		// Randomly corrupt half the time.
		if rng.Intn(2) == 0 && len(h) > 0 {
			i := rng.Intn(len(h))
			if h[i].IsRes() {
				h[i].Ret = history.Pair(rng.Intn(2) == 0, int64(rng.Intn(5)))
			}
		}
		if !h.IsWellFormed() {
			return true
		}
		a, errA := Linearizable(context.Background(), h, e)
		b, errB := CAL(context.Background(), h, e, WithElementCap(1))
		if (errA == nil) != (errB == nil) {
			return false
		}
		return errA != nil || a.OK == b.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCALImpliesWeakerThanLin_Quick: anything classically linearizable is
// also CA-linearizable (CAL generalizes linearizability).
func TestCALImpliesWeakerThanLin_Quick(t *testing.T) {
	st := spec.NewStack(objS)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := genStackHistory(rng, 1+rng.Intn(3), 4+rng.Intn(8))
		lin, err := Linearizable(context.Background(), h, st)
		if err != nil {
			return false
		}
		cal, err := CAL(context.Background(), h, st)
		if err != nil {
			return false
		}
		// For a sequential spec they coincide; in general lin ⇒ cal.
		return !lin.OK || cal.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCALMemoAblationAgrees_Quick(t *testing.T) {
	e := spec.NewExchanger(objE)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := genExchangerHistory(rng, 1+rng.Intn(5))
		a, errA := CAL(context.Background(), h, e)
		b, errB := CAL(context.Background(), h, e, WithoutMemo())
		if errA != nil || errB != nil {
			return errA != nil && errB != nil
		}
		return a.OK == b.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
