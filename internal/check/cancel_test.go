package check

import (
	"context"
	"errors"
	"testing"
	"time"

	"calgo/internal/history"
	"calgo/internal/spec"
)

const objIS history.ObjectID = "IS"

// adversarialSnapshotHistory builds a history of m pairwise-concurrent
// update operations that all claim a view of cardinality target. With
// target > m no subset of them can ever satisfy the snapshot spec's
// cardinality equation, so the checker must enumerate all 2^m - 1 nonempty
// subsets at a single search node before concluding Unsat — the worst case
// for any per-node-only cancellation check.
func adversarialSnapshotHistory(m, target int) history.History {
	var h history.History
	for i := 1; i <= m; i++ {
		h = append(h, inv(history.ThreadID(i), objIS, spec.MethodUpdate, history.Int(int64(i))))
	}
	for i := 1; i <= m; i++ {
		h = append(h, res(history.ThreadID(i), objIS, spec.MethodUpdate, history.Pair(true, int64(target))))
	}
	return h
}

func TestCALDeadline(t *testing.T) {
	const m = 22
	h := adversarialSnapshotHistory(m, m+1)
	sp := spec.NewSnapshot(objIS, m+1)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	r, err := CAL(ctx, h, sp)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline expiry must not be an error: %v", err)
	}
	if r.Verdict != Unknown {
		t.Fatalf("verdict = %v, want Unknown (elapsed %v)", r.Verdict, elapsed)
	}
	if !errors.Is(r.Unknown.Cause, context.DeadlineExceeded) {
		t.Errorf("cause = %v, want DeadlineExceeded", r.Unknown.Cause)
	}
	// The search must notice the deadline *inside* the exponential subset
	// enumeration, not only between search nodes — the whole enumeration
	// happens at one node here.
	if elapsed > 5*time.Second {
		t.Errorf("took %v to honour a 100ms deadline", elapsed)
	}
	if r.Unknown.Frontier.Elements == 0 {
		t.Error("frontier should count element attempts")
	}
	if r.Unknown.Frontier.TotalOps != m {
		t.Errorf("frontier TotalOps = %d, want %d", r.Unknown.Frontier.TotalOps, m)
	}
}

func TestCALCancelMidSearch(t *testing.T) {
	const m = 24
	h := adversarialSnapshotHistory(m, m+1)
	sp := spec.NewSnapshot(objIS, m+1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() {
		r, err := CAL(ctx, h, sp)
		if err != nil {
			t.Errorf("cancellation must not be an error: %v", err)
		}
		done <- r
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if r.Verdict != Unknown || !errors.Is(r.Unknown.Cause, context.Canceled) {
			t.Errorf("verdict = %v, cause = %+v; want Unknown/Canceled", r.Verdict, r.Unknown)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("checker did not honour cancellation")
	}
}

func TestCALNilContext(t *testing.T) {
	r, err := CAL(nil, fig3H1(), spec.NewExchanger(objE)) //nolint:staticcheck // nil ctx is explicitly supported
	if err != nil || !r.OK || r.Verdict != Sat {
		t.Errorf("nil context must behave like Background: r=%+v err=%v", r, err)
	}
}

func TestCALMemoBudget(t *testing.T) {
	// An unpaired successful exchange is Unsat; the root node fails and
	// would be memoized, tripping a 1-byte memo budget.
	h := history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		res(1, objE, spec.MethodExchange, history.Pair(true, 4)),
	}
	r, err := CAL(context.Background(), h, spec.NewExchanger(objE), WithMemoBudget(1))
	if err != nil {
		t.Fatalf("memo budget exhaustion must not be an error: %v", err)
	}
	if r.Verdict != Unknown || !errors.Is(r.Unknown.Cause, ErrMemoBudget) {
		t.Errorf("verdict = %v, Unknown = %+v; want Unknown/ErrMemoBudget", r.Verdict, r.Unknown)
	}
	// The same history with an ample budget is a clean Unsat.
	r2, err := CAL(context.Background(), h, spec.NewExchanger(objE), WithMemoBudget(1<<20))
	if err != nil || r2.Verdict != Unsat {
		t.Errorf("ample budget: verdict = %v, err = %v; want Unsat", r2.Verdict, err)
	}
}

func TestCALPartialWitness(t *testing.T) {
	// A satisfiable pairing followed by the exponential adversary: the
	// deepest path linearizes the exchange pair before stalling, so the
	// partial witness in the Unknown verdict is non-empty.
	const m = 22
	h := history.History{
		inv(10, objE, spec.MethodExchange, history.Int(3)),
		inv(11, objE, spec.MethodExchange, history.Int(4)),
		res(10, objE, spec.MethodExchange, history.Pair(true, 4)),
		res(11, objE, spec.MethodExchange, history.Pair(true, 3)),
	}
	h = append(h, adversarialSnapshotHistory(m, m+1)...)
	sp, err := spec.NewProduct(spec.NewExchanger(objE), spec.NewSnapshot(objIS, m+1))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	r, cerr := CAL(ctx, h, sp)
	if cerr != nil {
		t.Fatal(cerr)
	}
	if r.Verdict != Unknown {
		t.Fatalf("verdict = %v, want Unknown", r.Verdict)
	}
	if len(r.Unknown.PartialWitness) == 0 {
		t.Error("partial witness should carry the linearized exchange prefix")
	}
	if r.Unknown.Frontier.BestLinearized < 2 {
		t.Errorf("BestLinearized = %d, want >= 2", r.Unknown.Frontier.BestLinearized)
	}
}
