package check

import (
	"context"
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// fig3H3 is the non-CA-linearizable variant: a lone exchange claiming
// success with no overlapping partner.
func fig3H3() history.History {
	return history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		res(1, objE, spec.MethodExchange, history.Pair(true, 4)),
	}
}

// TestCheckManyMatchesIndividualChecks pins that CheckMany is a pure
// fan-out: results[i] must carry the same verdict, reason class and
// search statistics as a standalone CAL on histories[i].
func TestCheckManyMatchesIndividualChecks(t *testing.T) {
	e := spec.NewExchanger(objE)
	histories := []history.History{fig3H1(), fig3H3(), fig3H2(), fig3H1(), fig3H3()}
	for _, workers := range []int{0, 1, 3, 16} {
		results, err := CheckMany(context.Background(), histories, e, WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if len(results) != len(histories) {
			t.Fatalf("workers %d: %d results for %d histories", workers, len(results), len(histories))
		}
		for i, h := range histories {
			want, err := CAL(context.Background(), h, e)
			if err != nil {
				t.Fatal(err)
			}
			got := results[i]
			if got.OK != want.OK || got.Verdict != want.Verdict {
				t.Errorf("workers %d history %d: verdict %v, want %v", workers, i, got.Verdict, want.Verdict)
			}
			if got.States != want.States || got.MemoHits != want.MemoHits {
				t.Errorf("workers %d history %d: states/memo %d/%d, want %d/%d",
					workers, i, got.States, got.MemoHits, want.States, want.MemoHits)
			}
		}
	}
}

// TestCheckManyReportsInputErrorsByIndex checks that ill-formed inputs
// fail individually — wrapped with their index — without poisoning the
// valid histories in the same batch.
func TestCheckManyReportsInputErrorsByIndex(t *testing.T) {
	e := spec.NewExchanger(objE)
	bad := history.History{ // response with no invocation: not well-formed
		res(1, objE, spec.MethodExchange, history.Pair(false, 3)),
	}
	results, err := CheckMany(context.Background(), []history.History{fig3H1(), bad, fig3H2()}, e)
	if err == nil {
		t.Fatal("ill-formed history must surface an error")
	}
	if !strings.Contains(err.Error(), "history 1:") {
		t.Errorf("error %q should name the failing index", err)
	}
	if !results[0].OK || !results[2].OK {
		t.Error("valid histories in the batch must still be checked")
	}
	if results[1].OK || results[1].Verdict == Sat {
		t.Errorf("failed input produced a non-zero result: %+v", results[1])
	}
}

// TestCheckManyCancellation checks that cancellation is reported in-band
// per history, matching the CAL contract. The histories are wide
// (all operations concurrent) so every search crosses the checker's
// 1024-tick context-poll interval.
func TestCheckManyCancellation(t *testing.T) {
	wide := func(pairs int) history.History {
		var h history.History
		for p := 0; p < pairs; p++ {
			h = append(h,
				inv(history.ThreadID(2*p+1), objE, spec.MethodExchange, history.Int(int64(2*p+1))),
				inv(history.ThreadID(2*p+2), objE, spec.MethodExchange, history.Int(int64(2*p+2))))
		}
		for p := 0; p < pairs; p++ {
			h = append(h,
				res(history.ThreadID(2*p+1), objE, spec.MethodExchange, history.Pair(true, int64(2*p+2))),
				res(history.ThreadID(2*p+2), objE, spec.MethodExchange, history.Pair(true, int64(2*p+1))))
		}
		return h
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := CheckMany(ctx, []history.History{wide(7), wide(8)}, spec.NewExchanger(objE), WithParallelism(2))
	if err != nil {
		t.Fatalf("cancellation must be in-band, got error %v", err)
	}
	for i, r := range results {
		if r.Verdict != Unknown {
			t.Errorf("history %d: verdict %v under cancelled context, want Unknown", i, r.Verdict)
		}
	}
}

func TestCheckManyEmptyBatch(t *testing.T) {
	results, err := CheckMany(context.Background(), nil, spec.NewExchanger(objE))
	if err != nil || len(results) != 0 {
		t.Errorf("empty batch = %v, %v", results, err)
	}
}
