// Package check decides concurrency-aware linearizability (Definition 6 of
// the paper): given a history H of an object system and a CA-specification,
// it searches for a completion Hc of H and a CA-trace T admitted by the
// specification such that Hc ⊑CAL T (Definition 5).
//
// The decision procedure generalizes the classic Wing-Gong linearizability
// search from single operations to operation *sets*: instead of picking one
// ready operation as the next linearization point, it picks a set of
// pairwise-overlapping ready operations as the next CA-element. Classical
// linearizability and Neiger's set-linearizability fall out as the special
// cases with element size capped at 1 and at the specification's bound,
// respectively. The search is memoized on (linearized-set, spec-state) pairs
// in the style of Lowe's linearizability tester.
//
// The decision problem is NP-complete, so the searcher is built to degrade
// gracefully rather than hang or exhaust memory: it takes a context.Context
// for cooperative cancellation and wall-clock deadlines, enforces state and
// memoization-memory budgets, and reports a three-valued Verdict — Sat,
// Unsat, or Unknown with the abort cause, frontier statistics and a partial
// witness. Exhausting a budget is an answer ("ran out of resources here"),
// not an error.
package check

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"calgo/internal/history"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// ErrBound is the Unknown cause when the search exceeds its state budget.
var ErrBound = errors.New("check: state bound exceeded")

// ErrMemoBudget is the Unknown cause when the memoization table exceeds its
// memory budget.
var ErrMemoBudget = errors.New("check: memo memory budget exceeded")

// Result reports the outcome of a check.
type Result struct {
	// Verdict is the three-valued outcome: Sat, Unsat or Unknown.
	Verdict Verdict
	// OK is true iff Verdict == Sat. Kept as the convenient boolean for
	// the overwhelmingly common two-valued callers.
	OK bool
	// Witness is an admitted CA-trace the (completed) history agrees
	// with; set only when OK.
	Witness trace.Trace
	// Dropped lists pending operations removed by the chosen completion;
	// set only when OK.
	Dropped []history.Op
	// Reason describes the failure; set only when Verdict == Unsat.
	Reason string
	// States counts distinct (linearized-set, spec-state) pairs visited.
	States int
	// MemoHits counts search nodes pruned by memoization.
	MemoHits int
	// Unknown carries the abort cause, frontier statistics and partial
	// witness; set only when Verdict == Unknown.
	Unknown *UnknownInfo
}

type config struct {
	elementCap   int  // 0 = use spec's MaxElementSize
	maxStates    int  // search-state budget
	memoBudget   int  // approximate memo-table key bytes; 0 = unlimited
	memo         bool // memoize failed nodes
	completeOnly bool // reject histories with pending invocations
}

// Option configures a check.
type Option func(*config)

// WithElementCap caps CA-element sizes below the specification's own bound.
// A cap of 1 yields classical linearizability.
func WithElementCap(n int) Option { return func(c *config) { c.elementCap = n } }

// WithMaxStates bounds the number of distinct search states visited before
// the check gives up with an Unknown verdict (cause ErrBound). The default
// is 4_000_000.
func WithMaxStates(n int) Option { return func(c *config) { c.maxStates = n } }

// WithMemoBudget bounds the approximate byte footprint of the memoization
// table; exceeding it yields an Unknown verdict (cause ErrMemoBudget)
// instead of an OOM kill. 0 (the default) means unlimited.
func WithMemoBudget(bytes int) Option { return func(c *config) { c.memoBudget = bytes } }

// WithoutMemo disables memoization of failed search nodes. Exists for the
// memoization ablation benchmark; never useful otherwise.
func WithoutMemo() Option { return func(c *config) { c.memo = false } }

// WithCompleteOnly rejects histories containing pending invocations instead
// of exploring their completions.
func WithCompleteOnly() Option { return func(c *config) { c.completeOnly = true } }

// CAL decides whether h is concurrency-aware linearizable with respect to
// sp, without cancellation. See CALContext.
func CAL(h history.History, sp spec.Spec, opts ...Option) (Result, error) {
	return CALContext(context.Background(), h, sp, opts...)
}

// CALContext decides whether h is concurrency-aware linearizable with
// respect to sp. The history must be well-formed; pending invocations are
// handled per Definition 2 (dropped, or completed with responses proposed
// by the specification when it implements spec.PendingResolver).
//
// The returned error is non-nil only for input errors (ill-formed history,
// invalid options). Cancellation, deadline expiry and budget exhaustion
// are reported in-band as Verdict == Unknown with Result.Unknown set.
func CALContext(ctx context.Context, h history.History, sp spec.Spec, opts ...Option) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := config{maxStates: 4_000_000, memo: true}
	for _, o := range opts {
		o(&cfg)
	}
	if !h.IsWellFormed() {
		return Result{}, errors.New("check: history is not well-formed")
	}
	if cfg.completeOnly && !h.IsComplete() {
		return Result{}, fmt.Errorf("check: history has pending invocations %v", h.PendingThreads())
	}
	if cfg.elementCap < 0 {
		return Result{}, fmt.Errorf("check: element size cap %d < 1", cfg.elementCap)
	}
	maxElem := sp.MaxElementSize()
	if cfg.elementCap > 0 && cfg.elementCap < maxElem {
		maxElem = cfg.elementCap
	}
	if maxElem < 1 {
		return Result{}, fmt.Errorf("check: element size cap %d < 1", maxElem)
	}
	s := &searcher{
		ctx:     ctx,
		sp:      sp,
		cfg:     cfg,
		maxElem: maxElem,
		ops:     h.Operations(),
	}
	s.rt = history.RTOrder(s.ops)
	s.resolver, _ = sp.(spec.PendingResolver)
	return s.run()
}

// Linearizable decides classical linearizability: CAL restricted to
// singleton CA-elements, i.e. sequential specifications (Herlihy & Wing).
func Linearizable(h history.History, sp spec.Spec, opts ...Option) (Result, error) {
	return CAL(h, sp, append(opts, WithElementCap(1))...)
}

// LinearizableContext is Linearizable with cancellation.
func LinearizableContext(ctx context.Context, h history.History, sp spec.Spec, opts ...Option) (Result, error) {
	return CALContext(ctx, h, sp, append(opts, WithElementCap(1))...)
}

// SetLinearizable decides set-linearizability (Neiger 1994): identical to
// CAL under this package's trace model, provided as a named entry point.
func SetLinearizable(h history.History, sp spec.Spec, opts ...Option) (Result, error) {
	return CAL(h, sp, opts...)
}

// abortError interrupts the depth-first search; cause is one of ErrBound,
// ErrMemoBudget, context.Canceled or context.DeadlineExceeded.
type abortError struct{ cause error }

func (a *abortError) Error() string { return a.cause.Error() }
func (a *abortError) Unwrap() error { return a.cause }

type searcher struct {
	ctx      context.Context
	sp       spec.Spec
	resolver spec.PendingResolver
	cfg      config
	maxElem  int
	ops      []history.Op
	rt       [][]bool

	linearized []bool
	memo       map[string]bool
	memoBytes  int
	states     int
	memoHits   int
	elements   int
	work       int // ticks since the last context poll
	witness    trace.Trace

	// Failure diagnostics: the deepest linearization reached.
	bestCount   int
	bestMask    []bool
	bestWitness trace.Trace
}

// tick counts one unit of search work and polls the context every 1024
// units, so a single pathological node (e.g. subset enumeration over many
// concurrent operations) cannot outlive the deadline.
func (s *searcher) tick() error {
	s.work++
	if s.work&1023 != 0 {
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		return &abortError{cause: err}
	}
	return nil
}

func (s *searcher) run() (Result, error) {
	n := len(s.ops)
	s.linearized = make([]bool, n)
	s.bestMask = make([]bool, n)
	s.memo = make(map[string]bool)
	ok, err := s.dfs(s.sp.Init())
	res := Result{States: s.states, MemoHits: s.memoHits}
	if err != nil {
		var abort *abortError
		if errors.As(err, &abort) {
			res.Verdict = Unknown
			res.Unknown = &UnknownInfo{
				Cause:          abort.cause,
				Reason:         abort.cause.Error(),
				Frontier:       s.frontier(),
				PartialWitness: append(trace.Trace(nil), s.bestWitness...),
			}
			return res, nil
		}
		return res, err
	}
	if !ok {
		res.Verdict = Unsat
		res.Reason = s.failureReason()
		return res, nil
	}
	res.Verdict = Sat
	res.OK = true
	res.Witness = s.witness
	for i, op := range s.ops {
		if !s.linearized[i] {
			res.Dropped = append(res.Dropped, op)
		}
	}
	return res, nil
}

func (s *searcher) frontier() Frontier {
	return Frontier{
		BestLinearized: s.bestCount,
		TotalOps:       len(s.ops),
		States:         s.states,
		MemoHits:       s.memoHits,
		MemoBytes:      s.memoBytes,
		Elements:       s.elements,
	}
}

func (s *searcher) failureReason() string {
	reason := fmt.Sprintf("no completion of the history agrees with any CA-trace admitted by %s (explored %d states)",
		s.sp.Name(), s.states)
	if s.bestMask == nil {
		return reason
	}
	var stuck []string
	for i, op := range s.ops {
		if !s.bestMask[i] && !op.Pending {
			stuck = append(stuck, op.String())
			if len(stuck) == 4 {
				stuck = append(stuck, "...")
				break
			}
		}
	}
	if len(stuck) == 0 {
		return reason
	}
	return fmt.Sprintf("%s; best search linearized %d of %d operations, stuck on %s",
		reason, s.bestCount, len(s.ops), strings.Join(stuck, ", "))
}

// countLinearized returns the number of currently linearized operations.
func (s *searcher) countLinearized() int {
	n := 0
	for _, l := range s.linearized {
		if l {
			n++
		}
	}
	return n
}

// done reports whether every completed operation has been linearized.
func (s *searcher) done() bool {
	for i, op := range s.ops {
		if !op.Pending && !s.linearized[i] {
			return false
		}
	}
	return true
}

// ready returns the indices of unlinearized operations all of whose
// real-time predecessors are linearized.
func (s *searcher) ready() []int {
	var out []int
	n := len(s.ops)
	for i := 0; i < n; i++ {
		if s.linearized[i] {
			continue
		}
		ok := true
		for j := 0; j < n; j++ {
			if s.rt[j][i] && !s.linearized[j] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

func (s *searcher) stateKey(st spec.State) string {
	buf := make([]byte, (len(s.linearized)+7)/8)
	for i, a := range s.linearized {
		if a {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	return string(buf) + "\x00" + st.Key()
}

func (s *searcher) dfs(st spec.State) (bool, error) {
	if s.done() {
		return true, nil
	}
	if err := s.tick(); err != nil {
		return false, err
	}
	if n := s.countLinearized(); n > s.bestCount {
		s.bestCount = n
		s.bestMask = append(s.bestMask[:0], s.linearized...)
		s.bestWitness = append(s.bestWitness[:0], s.witness...)
	}
	key := s.stateKey(st)
	if s.cfg.memo {
		if s.memo[key] {
			s.memoHits++
			return false, nil
		}
	}
	s.states++
	if s.states > s.cfg.maxStates {
		return false, &abortError{cause: fmt.Errorf("%w (limit %d)", ErrBound, s.cfg.maxStates)}
	}

	ready := s.ready()
	// Enumerate candidate subsets of ready operations sharing an object,
	// pairwise concurrent, of size 1..maxElem.
	subset := make([]int, 0, s.maxElem)
	var enumerate func(start int) (bool, error)
	enumerate = func(start int) (bool, error) {
		if len(subset) > 0 {
			ok, err := s.tryElement(st, subset)
			if ok || err != nil {
				return ok, err
			}
		}
		if len(subset) == s.maxElem {
			return false, nil
		}
		for k := start; k < len(ready); k++ {
			i := ready[k]
			if !s.compatible(subset, i) {
				continue
			}
			subset = append(subset, i)
			ok, err := enumerate(k + 1)
			subset = subset[:len(subset)-1]
			if ok || err != nil {
				return ok, err
			}
		}
		return false, nil
	}
	ok, err := enumerate(0)
	if err != nil {
		return false, err
	}
	if !ok && s.cfg.memo {
		s.memoBytes += len(key) + 1
		if s.cfg.memoBudget > 0 && s.memoBytes > s.cfg.memoBudget {
			return false, &abortError{cause: fmt.Errorf("%w (limit %d bytes)", ErrMemoBudget, s.cfg.memoBudget)}
		}
		s.memo[key] = true
	}
	return ok, nil
}

// compatible reports whether op i can join the candidate element subset:
// same object as the existing members and concurrent with each of them.
func (s *searcher) compatible(subset []int, i int) bool {
	for _, j := range subset {
		if s.ops[j].Object != s.ops[i].Object {
			return false
		}
		if s.rt[i][j] || s.rt[j][i] {
			return false
		}
	}
	return true
}

// tryElement attempts to linearize the operations in subset as one
// CA-element, resolving pending returns through the specification.
func (s *searcher) tryElement(st spec.State, subset []int) (bool, error) {
	s.elements++
	if err := s.tick(); err != nil {
		return false, err
	}
	ops := make([]trace.Operation, len(subset))
	var pendingIdx []int
	for k, i := range subset {
		op := s.ops[i]
		ops[k] = trace.OpOf(op)
		if op.Pending {
			pendingIdx = append(pendingIdx, k)
		}
	}

	var resolutions [][]history.Value
	if len(pendingIdx) == 0 {
		resolutions = [][]history.Value{nil}
	} else {
		if s.resolver == nil {
			return false, nil // pending ops can only be dropped
		}
		resolutions = s.resolver.ResolveReturns(st, ops, pendingIdx)
	}

	for _, rets := range resolutions {
		if len(rets) != len(pendingIdx) {
			if len(pendingIdx) > 0 {
				continue // malformed resolution; skip defensively
			}
		}
		for k, idx := range pendingIdx {
			ops[idx].Ret = rets[k]
		}
		el, err := trace.NewElement(ops...)
		if err != nil {
			continue // e.g. resolution created a duplicate operation
		}
		next, err := s.sp.Step(st, el)
		if err != nil {
			continue // spec rejects this element
		}
		for _, i := range subset {
			s.linearized[i] = true
		}
		s.witness = append(s.witness, el)
		ok, derr := s.dfs(next)
		if ok {
			return true, nil
		}
		s.witness = s.witness[:len(s.witness)-1]
		for _, i := range subset {
			s.linearized[i] = false
		}
		if derr != nil {
			return false, derr
		}
	}
	return false, nil
}
