// Package check decides concurrency-aware linearizability (Definition 6 of
// the paper): given a history H of an object system and a CA-specification,
// it searches for a completion Hc of H and a CA-trace T admitted by the
// specification such that Hc ⊑CAL T (Definition 5).
//
// The decision procedure generalizes the classic Wing-Gong linearizability
// search from single operations to operation *sets*: instead of picking one
// ready operation as the next linearization point, it picks a set of
// pairwise-overlapping ready operations as the next CA-element. Classical
// linearizability and Neiger's set-linearizability fall out as the special
// cases with element size capped at 1 and at the specification's bound,
// respectively. The search is memoized on (linearized-set, spec-state) pairs
// in the style of Lowe's linearizability tester.
//
// The decision problem is NP-complete, so the searcher is built to degrade
// gracefully rather than hang or exhaust memory: it takes a context.Context
// for cooperative cancellation and wall-clock deadlines, enforces state and
// memoization-memory budgets, and reports a three-valued Verdict — Sat,
// Unsat, or Unknown with the abort cause, frontier statistics and a partial
// witness. Exhausting a budget is an answer ("ran out of resources here"),
// not an error.
package check

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync/atomic"
	"time"

	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// ErrBound is the Unknown cause when the search exceeds its state budget.
var ErrBound = errors.New("check: state bound exceeded")

// ErrMemoBudget is the Unknown cause when the memoization table exceeds its
// memory budget.
var ErrMemoBudget = errors.New("check: memo memory budget exceeded")

// Result reports the outcome of a check.
type Result struct {
	// Verdict is the three-valued outcome: Sat, Unsat or Unknown.
	Verdict Verdict
	// OK is true iff Verdict == Sat. Kept as the convenient boolean for
	// the overwhelmingly common two-valued callers.
	OK bool
	// Witness is an admitted CA-trace the (completed) history agrees
	// with; set only when OK.
	Witness trace.Trace
	// Dropped lists pending operations removed by the chosen completion;
	// set only when OK.
	Dropped []history.Op
	// Reason describes the failure; set only when Verdict == Unsat.
	Reason string
	// States counts distinct (linearized-set, spec-state) pairs visited.
	States int
	// MemoHits counts search nodes pruned by memoization.
	MemoHits int
	// Unknown carries the abort cause, frontier statistics and partial
	// witness; set only when Verdict == Unknown.
	Unknown *UnknownInfo
	// Explanation is the structured evidence behind the verdict: the
	// history's operations, the (full or deepest-partial) witness trace,
	// and on-demand views of the matched surjection and the blocked
	// operations. Always set on a nil-error Result.
	Explanation *Explanation
	// Engine records which decision procedure produced the verdict:
	// EngineDFS for the search (Witness/States/MemoHits are meaningful),
	// EngineMonitor for the specialized log-linear monitor (Sat carries
	// no witness trace and States is 0).
	Engine Engine
}

type config struct {
	elementCap   int  // 0 = use spec's MaxElementSize
	maxStates    int  // search-state budget
	memoBudget   int  // approximate memo-table key bytes; 0 = unlimited
	memo         bool // memoize failed nodes
	completeOnly bool // reject histories with pending invocations
	workers      int  // CheckMany pool size; 0 = GOMAXPROCS
	engine       Engine

	// Observability sinks; all nil/zero (disabled) by default, and every
	// hook site nil-checks so the disabled hot path costs one branch.
	tracer        obs.Tracer
	metrics       *obs.Metrics
	progressEvery time.Duration
	progressFn    func(obs.Progress)
	live          *obs.LiveRun
}

// Option configures a check.
type Option func(*config)

// WithElementCap caps CA-element sizes below the specification's own bound.
// A cap of 1 yields classical linearizability.
func WithElementCap(n int) Option { return func(c *config) { c.elementCap = n } }

// WithMaxStates bounds the number of distinct search states visited before
// the check gives up with an Unknown verdict (cause ErrBound). The default
// is 4_000_000.
func WithMaxStates(n int) Option { return func(c *config) { c.maxStates = n } }

// WithMemoBudget bounds the approximate byte footprint of the memoization
// table; exceeding it yields an Unknown verdict (cause ErrMemoBudget)
// instead of an OOM kill. 0 (the default) means unlimited.
func WithMemoBudget(bytes int) Option { return func(c *config) { c.memoBudget = bytes } }

// WithoutMemo disables memoization of failed search nodes. Exists for the
// memoization ablation benchmark; never useful otherwise.
func WithoutMemo() Option { return func(c *config) { c.memo = false } }

// WithCompleteOnly rejects histories containing pending invocations instead
// of exploring their completions.
func WithCompleteOnly() Option { return func(c *config) { c.completeOnly = true } }

// WithTracer attaches span-style search hooks (obs.Tracer): SearchStart,
// NodeExpand, MemoHit, ElementAdmit, Backtrack, SearchEnd. A nil tracer
// (the default) costs one branch per hook site and zero allocations.
func WithTracer(t obs.Tracer) Option { return func(c *config) { c.tracer = t } }

// WithMetrics accumulates search statistics into the registry: the
// check.* counters/gauges and the check.element_size histogram (see
// EXPERIMENTS.md, "Metrics schema"). Counter totals are merged once per
// check, off the hot path; the registry may be shared across checkers
// and with the explorer.
func WithMetrics(m *obs.Metrics) Option { return func(c *config) { c.metrics = m } }

// WithProgress reports search progress (states expanded, states/sec, ETA
// against the state budget) to fn every interval, from a dedicated
// goroutine. On CheckMany the batch shares one reporter and the states
// of all workers are aggregated.
func WithProgress(every time.Duration, fn func(obs.Progress)) Option {
	return func(c *config) { c.progressEvery, c.progressFn = every, fn }
}

// WithLive attaches checks to a LiveRun view: the aggregate state count
// and (on CheckMany) per-worker completion counters become pollable by
// the ops server's /statusz. Pull-based: the searcher's existing
// periodic live-count flush feeds it, so the hot path gains no work.
func WithLive(l *obs.LiveRun) Option { return func(c *config) { c.live = l } }

// CAL decides whether h is concurrency-aware linearizable with respect
// to sp. The history must be well-formed; pending invocations are
// handled per Definition 2 (dropped, or completed with responses
// proposed by the specification when it implements spec.PendingResolver).
//
// The context cancels the search cooperatively: cancellation and
// deadline expiry yield an Unknown verdict instead of hanging. The
// returned error is non-nil only for input errors (ill-formed history,
// invalid options); budget exhaustion is likewise reported in-band as
// Verdict == Unknown with Result.Unknown set.
//
// Checking many histories against one specification? Build a Checker
// once and call Check per history instead of re-resolving options here.
func CAL(ctx context.Context, h history.History, sp spec.Spec, opts ...Option) (Result, error) {
	c, err := NewChecker(sp, opts...)
	if err != nil {
		return Result{}, err
	}
	return c.Check(ctx, h)
}

// Linearizable decides classical linearizability: CAL restricted to
// singleton CA-elements, i.e. sequential specifications (Herlihy & Wing).
func Linearizable(ctx context.Context, h history.History, sp spec.Spec, opts ...Option) (Result, error) {
	return CAL(ctx, h, sp, append(opts, WithElementCap(1))...)
}

// SetLinearizable decides set-linearizability (Neiger 1994): identical to
// CAL under this package's trace model, provided as a named entry point.
func SetLinearizable(ctx context.Context, h history.History, sp spec.Spec, opts ...Option) (Result, error) {
	return CAL(ctx, h, sp, opts...)
}

// abortError interrupts the depth-first search; cause is one of ErrBound,
// ErrMemoBudget, context.Canceled or context.DeadlineExceeded.
type abortError struct{ cause error }

func (a *abortError) Error() string { return a.cause.Error() }
func (a *abortError) Unwrap() error { return a.cause }

// bitset is a packed linearized-operation mask; one bit per operation.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitsetEqual(a, b bitset) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memoEntry is one memoized failed node: the exact linearized mask and
// spec-state key, stored under their combined hash. Exactness matters —
// the hash only buckets; entries are compared in full, so collisions can
// never flip a verdict.
type memoEntry struct {
	mask    bitset
	specKey string
}

// memoHash mixes the linearized mask and the spec-state key (FNV-1a over
// mask words, then key bytes) into the memo bucket hash.
func memoHash(mask bitset, specKey string) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range mask {
		h ^= w
		h *= 1099511628211
	}
	for i := 0; i < len(specKey); i++ {
		h ^= uint64(specKey[i])
		h *= 1099511628211
	}
	return h
}

type searcher struct {
	ctx      context.Context
	sp       spec.Spec
	resolver spec.PendingResolver
	cfg      config
	maxElem  int
	ops      []history.Op
	rt       [][]bool

	// Linearization state, maintained incrementally by linearize and
	// unlinearize rather than recomputed per node: the packed mask, the
	// linearized counts, the per-operation count of unlinearized
	// real-time predecessors, and the current ready set (operations with
	// no unlinearized predecessors) with positional index for O(1)
	// removal.
	linearized bitset
	nlin       int       // linearized operations
	nlinDone   int       // linearized completed (non-pending) operations
	totalDone  int       // completed operations in the history
	succs      [][]int32 // real-time successors per operation
	blockers   []int32   // unlinearized real-time predecessors per op
	ready      []int32
	readyPos   []int32 // position in ready, -1 if absent

	memo      map[uint64][]memoEntry
	memoBytes int
	maskArena []uint64 // chunk allocator for memoized masks
	states    int
	memoHits  int
	elements  int
	work      int // ticks since the last context poll
	witness   trace.Trace

	// Observability. tr is nil when tracing is off — every hook site
	// nil-checks, so the disabled fast path adds one branch and no
	// allocations. live, when non-nil, receives the state count at every
	// context-poll interval so a progress reporter (possibly shared by a
	// CheckMany batch) can read it concurrently. hElemSize is the cached
	// element-size histogram when metrics are attached.
	tr        obs.Tracer
	live      *atomic.Int64
	livePub   int // states already published to live
	hElemSize *obs.Histogram

	// Scratch freelists: dfs needs a private ready snapshot and subset
	// buffer per node, tryElement a trace.Operation buffer per attempt;
	// recycled so the hot path stops allocating.
	readyFree  [][]int32
	subsetFree [][]int32
	opsFree    [][]trace.Operation

	// Failure diagnostics: the deepest linearization reached.
	bestCount   int
	bestMask    bitset
	bestWitness trace.Trace
}

// tick counts one unit of search work and polls the context every 1024
// units, so a single pathological node (e.g. subset enumeration over many
// concurrent operations) cannot outlive the deadline.
func (s *searcher) tick() error {
	s.work++
	if s.work&1023 != 0 {
		return nil
	}
	if s.live != nil {
		s.live.Add(int64(s.states - s.livePub))
		s.livePub = s.states
	}
	if err := s.ctx.Err(); err != nil {
		return &abortError{cause: err}
	}
	return nil
}

func (s *searcher) run() (Result, error) {
	// Setup allocates a fixed handful of backing arrays regardless of n:
	// both bitsets share one word slice, the three int32 vectors share
	// another, and the successor adjacency is counted first so its flat
	// edge array is sized exactly. CheckMany amortizes nothing across
	// histories, so per-call setup cost is part of the hot path.
	n := len(s.ops)
	words := (n + 63) / 64
	maskWords := make([]uint64, 2*words)
	s.linearized = bitset(maskWords[:words:words])
	s.bestMask = bitset(maskWords[words:])
	ints := make([]int32, 3*n)
	s.blockers = ints[:n:n]
	s.readyPos = ints[n : 2*n : 2*n]
	s.ready = ints[2*n : 2*n : 3*n]
	edges := 0
	for i := 0; i < n; i++ {
		if !s.ops[i].Pending {
			s.totalDone++
		}
		s.readyPos[i] = -1
		for j := 0; j < n; j++ {
			if s.rt[i][j] {
				edges++
				s.blockers[j]++
			}
		}
	}
	s.succs = make([][]int32, n)
	flat := make([]int32, 0, edges)
	for i := 0; i < n; i++ {
		head := len(flat)
		for j := 0; j < n; j++ {
			if s.rt[i][j] {
				flat = append(flat, int32(j))
			}
		}
		s.succs[i] = flat[head:len(flat):len(flat)]
	}
	for i := 0; i < n; i++ {
		if s.blockers[i] == 0 {
			s.readyAdd(int32(i))
		}
	}
	if s.tr != nil {
		s.tr.SearchStart(n)
	}
	// Poll once before searching: a context cancelled before the call
	// deterministically yields Unknown even when the search itself would
	// finish within one poll interval.
	var err error
	var ok bool
	if err = s.ctx.Err(); err != nil {
		err = &abortError{cause: err}
	} else {
		ok, err = s.dfs(s.sp.Init())
	}
	res := Result{States: s.states, MemoHits: s.memoHits}
	if err != nil {
		var abort *abortError
		if errors.As(err, &abort) {
			res.Verdict = Unknown
			res.Unknown = &UnknownInfo{
				Cause:          abort.cause,
				Reason:         abort.cause.Error(),
				Frontier:       s.frontier(),
				PartialWitness: append(trace.Trace(nil), s.bestWitness...),
			}
			res.Explanation = &Explanation{Verdict: Unknown, Ops: s.ops, Witness: res.Unknown.PartialWitness}
			return s.finish(res), nil
		}
		s.finish(res)
		return res, err
	}
	if !ok {
		res.Verdict = Unsat
		res.Reason = s.failureReason()
		// The searcher is single-use, so its deepest-partial buffer can be
		// handed out without copying.
		res.Explanation = &Explanation{Verdict: Unsat, Ops: s.ops, Witness: s.bestWitness}
		return s.finish(res), nil
	}
	res.Verdict = Sat
	res.OK = true
	res.Witness = s.witness
	for i, op := range s.ops {
		if !s.linearized.get(i) {
			res.Dropped = append(res.Dropped, op)
		}
	}
	res.Explanation = &Explanation{Verdict: Sat, Ops: s.ops, Witness: s.witness}
	return s.finish(res), nil
}

// finish runs the cold end-of-search observability work: the closing
// tracer span, the final live-state flush for progress reporters, and
// the one-shot merge of this search's totals into the metrics registry.
func (s *searcher) finish(res Result) Result {
	if s.tr != nil {
		s.tr.SearchEnd(res.Verdict.String(), int64(s.states))
	}
	if s.live != nil {
		s.live.Add(int64(s.states - s.livePub))
		s.livePub = s.states
	}
	if m := s.cfg.metrics; m != nil {
		m.Counter("check.checks").Inc()
		m.Counter("check.states").Add(int64(s.states))
		m.Counter("check.memo_hits").Add(int64(s.memoHits))
		// Every expanded node missed the memo table first.
		m.Counter("check.memo_misses").Add(int64(s.states))
		m.Counter("check.elements").Add(int64(s.elements))
		m.Counter("check.verdict." + strings.ToLower(res.Verdict.String())).Inc()
		m.Gauge("check.frontier_depth").SetMax(int64(s.bestCount))
		m.Gauge("check.memo_bytes").SetMax(int64(s.memoBytes))
	}
	return res
}

func (s *searcher) frontier() Frontier {
	return Frontier{
		BestLinearized: s.bestCount,
		TotalOps:       len(s.ops),
		States:         s.states,
		MemoHits:       s.memoHits,
		MemoBytes:      s.memoBytes,
		Elements:       s.elements,
	}
}

func (s *searcher) failureReason() string {
	reason := fmt.Sprintf("no completion of the history agrees with any CA-trace admitted by %s (explored %d states)",
		s.sp.Name(), s.states)
	if s.bestMask == nil {
		return reason
	}
	var stuck []string
	for i, op := range s.ops {
		if !s.bestMask.get(i) && !op.Pending {
			stuck = append(stuck, op.String())
			if len(stuck) == 4 {
				stuck = append(stuck, "...")
				break
			}
		}
	}
	if len(stuck) == 0 {
		return reason
	}
	return fmt.Sprintf("%s; best search linearized %d of %d operations, stuck on %s",
		reason, s.bestCount, len(s.ops), strings.Join(stuck, ", "))
}

// readyAdd appends op i to the ready set.
func (s *searcher) readyAdd(i int32) {
	s.readyPos[i] = int32(len(s.ready))
	s.ready = append(s.ready, i)
}

// readyRemove deletes op i from the ready set by swap-removal.
func (s *searcher) readyRemove(i int32) {
	p := s.readyPos[i]
	last := int32(len(s.ready) - 1)
	moved := s.ready[last]
	s.ready[p] = moved
	s.readyPos[moved] = p
	s.ready = s.ready[:last]
	s.readyPos[i] = -1
}

// linearize marks op i linearized, updating the counts, its successors'
// blocker counts and the ready set incrementally.
func (s *searcher) linearize(i int) {
	s.linearized.set(i)
	s.nlin++
	if !s.ops[i].Pending {
		s.nlinDone++
	}
	s.readyRemove(int32(i))
	for _, j := range s.succs[i] {
		s.blockers[j]--
		if s.blockers[j] == 0 {
			s.readyAdd(j)
		}
	}
}

// unlinearize is the exact inverse of linearize. Calls must unwind in
// reverse linearization order (LIFO), which the search's backtracking
// guarantees.
func (s *searcher) unlinearize(i int) {
	for k := len(s.succs[i]) - 1; k >= 0; k-- {
		j := s.succs[i][k]
		if s.blockers[j] == 0 {
			s.readyRemove(j)
		}
		s.blockers[j]++
	}
	s.readyAdd(int32(i))
	s.linearized.clear(i)
	s.nlin--
	if !s.ops[i].Pending {
		s.nlinDone--
	}
}

// getReadyBuf returns a recycled snapshot buffer for the ready set.
func (s *searcher) getReadyBuf() []int32 {
	if n := len(s.readyFree); n > 0 {
		b := s.readyFree[n-1]
		s.readyFree = s.readyFree[:n-1]
		return b[:0]
	}
	return make([]int32, 0, len(s.ops))
}

func (s *searcher) putReadyBuf(b []int32) { s.readyFree = append(s.readyFree, b) }

// getSubsetBuf returns a recycled candidate-subset buffer. Its capacity is
// maxElem and enumerate never grows past it, so append never reallocates.
func (s *searcher) getSubsetBuf() []int32 {
	if n := len(s.subsetFree); n > 0 {
		b := s.subsetFree[n-1]
		s.subsetFree = s.subsetFree[:n-1]
		return b[:0]
	}
	return make([]int32, 0, s.maxElem)
}

func (s *searcher) putSubsetBuf(b []int32) { s.subsetFree = append(s.subsetFree, b) }

// getOpsBuf returns a recycled trace.Operation scratch buffer of length n.
// Safe to recycle after trace.NewElement, which copies its input.
func (s *searcher) getOpsBuf(n int) []trace.Operation {
	if l := len(s.opsFree); l > 0 {
		b := s.opsFree[l-1]
		s.opsFree = s.opsFree[:l-1]
		return b[:n]
	}
	return make([]trace.Operation, n, s.maxElem)
}

func (s *searcher) putOpsBuf(b []trace.Operation) { s.opsFree = append(s.opsFree, b[:0]) }

// saveMask copies the current linearized mask into the mask arena,
// amortizing one allocation over many memoized nodes.
func (s *searcher) saveMask() bitset {
	w := len(s.linearized)
	if len(s.maskArena) < w {
		s.maskArena = make([]uint64, 1024*w)
	}
	m := bitset(s.maskArena[:w:w])
	s.maskArena = s.maskArena[w:]
	copy(m, s.linearized)
	return m
}

func (s *searcher) dfs(st spec.State) (bool, error) {
	if s.nlinDone == s.totalDone {
		return true, nil
	}
	if err := s.tick(); err != nil {
		return false, err
	}
	if s.nlin > s.bestCount {
		s.bestCount = s.nlin
		copy(s.bestMask, s.linearized)
		s.bestWitness = append(s.bestWitness[:0], s.witness...)
	}
	specKey := st.Key()
	var hash uint64
	if s.cfg.memo {
		hash = memoHash(s.linearized, specKey)
		for _, m := range s.memo[hash] {
			if m.specKey == specKey && bitsetEqual(m.mask, s.linearized) {
				s.memoHits++
				if s.tr != nil {
					s.tr.MemoHit(s.nlin)
				}
				return false, nil
			}
		}
	}
	s.states++
	if s.tr != nil {
		s.tr.NodeExpand(s.nlin, int64(s.states))
	}
	if s.states > s.cfg.maxStates {
		return false, &abortError{cause: fmt.Errorf("%w (limit %d)", ErrBound, s.cfg.maxStates)}
	}

	// Snapshot the ready set: the recursion below mutates it in place,
	// and linearize/unlinearize restore it only as a set — ascending
	// order keeps the enumeration deterministic.
	ready := append(s.getReadyBuf(), s.ready...)
	slices.Sort(ready)
	subset := s.getSubsetBuf()
	// Enumerate candidate subsets of ready operations sharing an object,
	// pairwise concurrent, of size 1..maxElem.
	ok, err := s.enumerate(st, ready, subset, 0)
	s.putSubsetBuf(subset)
	s.putReadyBuf(ready)
	if err != nil {
		return false, err
	}
	if !ok && s.cfg.memo {
		s.memoBytes += 8*len(s.linearized) + len(specKey) + 48
		if s.cfg.memoBudget > 0 && s.memoBytes > s.cfg.memoBudget {
			return false, &abortError{cause: fmt.Errorf("%w (limit %d bytes)", ErrMemoBudget, s.cfg.memoBudget)}
		}
		if s.memo == nil { // created on first insert; lookups tolerate nil
			s.memo = make(map[uint64][]memoEntry)
		}
		s.memo[hash] = append(s.memo[hash], memoEntry{mask: s.saveMask(), specKey: specKey})
	}
	return ok, nil
}

// enumerate extends subset with ready operations from position start on.
// subset's backing array has capacity maxElem and is shared down the
// recursion of one node; append therefore never reallocates, and each
// frame's length restores itself on return.
func (s *searcher) enumerate(st spec.State, ready, subset []int32, start int) (bool, error) {
	if len(subset) > 0 {
		ok, err := s.tryElement(st, subset)
		if ok || err != nil {
			return ok, err
		}
	}
	if len(subset) == s.maxElem {
		return false, nil
	}
	for k := start; k < len(ready); k++ {
		i := ready[k]
		if !s.compatible(subset, i) {
			continue
		}
		ok, err := s.enumerate(st, ready, append(subset, i), k+1)
		if ok || err != nil {
			return ok, err
		}
	}
	return false, nil
}

// compatible reports whether op i can join the candidate element subset:
// same object as the existing members and concurrent with each of them.
func (s *searcher) compatible(subset []int32, i int32) bool {
	for _, j := range subset {
		if s.ops[j].Object != s.ops[i].Object {
			return false
		}
		if s.rt[i][j] || s.rt[j][i] {
			return false
		}
	}
	return true
}

// tryElement attempts to linearize the operations in subset as one
// CA-element, resolving pending returns through the specification.
func (s *searcher) tryElement(st spec.State, subset []int32) (bool, error) {
	s.elements++
	if err := s.tick(); err != nil {
		return false, err
	}
	ops := s.getOpsBuf(len(subset))
	defer s.putOpsBuf(ops)
	var pendingIdx []int
	for k, i := range subset {
		op := s.ops[i]
		ops[k] = trace.OpOf(op)
		if op.Pending {
			pendingIdx = append(pendingIdx, k)
		}
	}

	var resolutions [][]history.Value
	if len(pendingIdx) == 0 {
		resolutions = [][]history.Value{nil}
	} else {
		if s.resolver == nil {
			return false, nil // pending ops can only be dropped
		}
		resolutions = s.resolver.ResolveReturns(st, ops, pendingIdx)
	}

	for _, rets := range resolutions {
		if len(rets) != len(pendingIdx) {
			if len(pendingIdx) > 0 {
				continue // malformed resolution; skip defensively
			}
		}
		for k, idx := range pendingIdx {
			ops[idx].Ret = rets[k]
		}
		el, err := trace.NewElement(ops...)
		if err != nil {
			continue // e.g. resolution created a duplicate operation
		}
		next, err := s.sp.Step(st, el)
		if err != nil {
			continue // spec rejects this element
		}
		depth := s.nlin
		for _, i := range subset {
			s.linearize(int(i))
		}
		if s.tr != nil {
			s.tr.ElementAdmit(depth, len(subset))
		}
		if s.hElemSize != nil {
			s.hElemSize.Observe(int64(len(subset)))
		}
		s.witness = append(s.witness, el)
		ok, derr := s.dfs(next)
		if ok {
			return true, nil
		}
		s.witness = s.witness[:len(s.witness)-1]
		for k := len(subset) - 1; k >= 0; k-- {
			s.unlinearize(int(subset[k]))
		}
		if s.tr != nil {
			s.tr.Backtrack(depth, len(subset))
		}
		if derr != nil {
			return false, derr
		}
	}
	return false, nil
}
