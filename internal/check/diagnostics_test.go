package check

import (
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// TestFailureReasonNamesStuckOps: the rejection reason identifies which
// operations could not be linearized.
func TestFailureReasonNamesStuckOps(t *testing.T) {
	// A valid fail, then a lone successful exchange: the second op is the
	// culprit.
	h := history.History{
		inv(1, objE, spec.MethodExchange, history.Int(3)),
		res(1, objE, spec.MethodExchange, history.Pair(false, 3)),
		inv(2, objE, spec.MethodExchange, history.Int(4)),
		res(2, objE, spec.MethodExchange, history.Pair(true, 9)),
	}
	r := mustCAL(t, h, spec.NewExchanger(objE))
	if r.OK {
		t.Fatal("history must be rejected")
	}
	if !strings.Contains(r.Reason, "linearized 1 of 2") {
		t.Errorf("reason should report best progress: %s", r.Reason)
	}
	if !strings.Contains(r.Reason, "t2") || !strings.Contains(r.Reason, "exchange(4)") {
		t.Errorf("reason should name the stuck operation: %s", r.Reason)
	}
}

// TestFailureReasonTruncatesLongLists: at most a handful of stuck ops are
// printed.
func TestFailureReasonTruncatesLongLists(t *testing.T) {
	var h history.History
	// Ten lone successful exchanges: all stuck.
	for i := int64(1); i <= 10; i++ {
		tid := history.ThreadID(i)
		h = append(h,
			inv(tid, objE, spec.MethodExchange, history.Int(i)),
			res(tid, objE, spec.MethodExchange, history.Pair(true, i+100)),
		)
	}
	r := mustCAL(t, h, spec.NewExchanger(objE))
	if r.OK {
		t.Fatal("history must be rejected")
	}
	if !strings.Contains(r.Reason, "...") {
		t.Errorf("long stuck lists should be truncated: %s", r.Reason)
	}
	if got := strings.Count(r.Reason, "exchange("); got > 4 {
		t.Errorf("reason lists %d ops, want at most 4: %s", got, r.Reason)
	}
}
