package check

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/spec"
)

// Checker is a reusable, configured decision procedure: options are
// resolved and validated once by NewChecker, then Check runs against any
// number of histories. A Checker is immutable after construction and safe
// for concurrent use by multiple goroutines — each Check builds a private
// searcher; shared observability sinks (obs.Tracer implementations in this
// module, *obs.Metrics) are themselves concurrency-safe.
//
// CheckMany, the calfuzz batch path and the chaos soak all construct one
// Checker and fan histories across it, so "configure once, check many"
// is the single construction path for every batch consumer.
type Checker struct {
	sp        spec.Spec
	cfg       config
	maxElem   int
	resolver  spec.PendingResolver
	hElemSize *obs.Histogram // cached when metrics are attached
}

// NewChecker validates opts against sp and returns a reusable Checker.
// It fails on invalid configuration (e.g. a non-positive element cap);
// per-history problems are reported by Check.
func NewChecker(sp spec.Spec, opts ...Option) (*Checker, error) {
	cfg := config{maxStates: 4_000_000, memo: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.elementCap < 0 {
		return nil, fmt.Errorf("check: element size cap %d < 1", cfg.elementCap)
	}
	maxElem := sp.MaxElementSize()
	if cfg.elementCap > 0 && cfg.elementCap < maxElem {
		maxElem = cfg.elementCap
	}
	if maxElem < 1 {
		return nil, fmt.Errorf("check: element size cap %d < 1", maxElem)
	}
	if cfg.engine == EngineMonitor && maxElem > 1 {
		return nil, fmt.Errorf("check: engine monitor decides classical linearizability only; spec %s admits elements of size %d (cap with WithElementCap(1) or use engine auto)", sp.Name(), maxElem)
	}
	c := &Checker{sp: sp, cfg: cfg, maxElem: maxElem}
	c.resolver, _ = sp.(spec.PendingResolver)
	if cfg.metrics != nil {
		c.hElemSize = cfg.metrics.Histogram("check.element_size")
	}
	return c, nil
}

// Spec returns the specification this Checker decides against.
func (c *Checker) Spec() spec.Spec { return c.sp }

// MaxElementSize returns the effective element-size bound the Checker
// decides under: the spec's MaxElementSize clipped by WithElementCap.
// A bound of 1 means classical linearizability — the fragment the
// specialized monitors (and their streaming steppers) decide.
func (c *Checker) MaxElementSize() int { return c.maxElem }

// Check decides whether h is concurrency-aware linearizable with respect
// to the Checker's specification. See CAL for the verdict contract.
func (c *Checker) Check(ctx context.Context, h history.History) (Result, error) {
	var live *atomic.Int64
	if (c.cfg.progressEvery > 0 && c.cfg.progressFn != nil) || c.cfg.live != nil {
		live = new(atomic.Int64)
	}
	if c.cfg.progressEvery > 0 && c.cfg.progressFn != nil {
		stop := obs.StartProgress(c.cfg.progressEvery, int64(c.cfg.maxStates), live.Load, c.cfg.progressFn)
		defer stop()
	}
	if c.cfg.live != nil {
		c.cfg.live.StartSearch("check", int64(c.cfg.maxStates), live.Load, 1)
		defer c.cfg.live.EndSearch()
	}
	return c.check(ctx, h, live)
}

// CheckMany decides concurrency-aware linearizability for a batch of
// histories, fanning the per-history checks across a worker pool
// (WithParallelism, default GOMAXPROCS). Each history is checked
// independently with its own searcher, so results[i] corresponds to
// histories[i] exactly as if Check had been called on it alone.
//
// The returned error joins the per-history input errors (each wrapped
// with its index); results[i] is the zero Result for failed inputs.
// Cancellation is reported in-band per history as Verdict == Unknown,
// matching Check. When progress reporting is configured the whole batch
// shares one reporter whose state count aggregates all workers, with the
// budget scaled to maxStates × len(histories).
func (c *Checker) CheckMany(ctx context.Context, histories []history.History) ([]Result, error) {
	results := make([]Result, len(histories))
	if len(histories) == 0 {
		return results, nil
	}
	workers := c.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(histories) {
		workers = len(histories)
	}

	var live *atomic.Int64
	if (c.cfg.progressEvery > 0 && c.cfg.progressFn != nil) || c.cfg.live != nil {
		live = new(atomic.Int64)
	}
	budget := int64(c.cfg.maxStates) * int64(len(histories))
	if c.cfg.progressEvery > 0 && c.cfg.progressFn != nil {
		stop := obs.StartProgress(c.cfg.progressEvery, budget, live.Load, c.cfg.progressFn)
		defer stop()
	}
	if c.cfg.live != nil {
		c.cfg.live.StartSearch("check", budget, live.Load, workers)
		defer c.cfg.live.EndSearch()
	}

	labelCtx := ctx
	if labelCtx == nil {
		labelCtx = context.Background()
	}
	errs := make([]error, len(histories))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			// The label makes CPU profiles attributable per pool worker;
			// the live counter counts completed histories, not states.
			pprof.Do(labelCtx, pprof.Labels(
				"calgo_worker", strconv.Itoa(id),
				"calgo_phase", "check",
			), func(context.Context) {
				wl := c.cfg.live.Worker(id)
				for {
					i := int(next.Add(1)) - 1
					if i >= len(histories) {
						return
					}
					res, err := c.check(ctx, histories[i], live)
					if wl != nil {
						wl.Claimed.Add(1)
					}
					if err != nil {
						errs[i] = fmt.Errorf("history %d: %w", i, err)
						continue
					}
					results[i] = res
				}
			})
		}(w)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// check validates h, builds a private searcher wired to the Checker's
// observability sinks and the (possibly shared) live state counter, and
// runs the search.
func (c *Checker) check(ctx context.Context, h history.History, live *atomic.Int64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !h.IsWellFormed() {
		return Result{}, errors.New("check: history is not well-formed")
	}
	if c.cfg.completeOnly && !h.IsComplete() {
		return Result{}, fmt.Errorf("check: history has pending invocations %v", h.PendingThreads())
	}
	// Engine dispatch: with CA-elements capped at 1 the specification is
	// classical linearizability, which the specialized monitors decide in
	// O(n log n) for the unambiguous fragment. Under EngineAuto a punt
	// falls through to the DFS below; under EngineMonitor it is final.
	if c.cfg.engine != EngineDFS && c.maxElem == 1 {
		if res, decided := c.tryMonitor(h, live); decided {
			return res, nil
		}
	}
	s := &searcher{
		ctx:       ctx,
		sp:        c.sp,
		resolver:  c.resolver,
		cfg:       c.cfg,
		maxElem:   c.maxElem,
		ops:       h.Operations(),
		tr:        c.cfg.tracer,
		live:      live,
		hElemSize: c.hElemSize,
	}
	s.rt = history.RTOrder(s.ops)
	return s.run()
}
