package calgo

import (
	"calgo/internal/obs"
)

// Observability: metrics, tracing and progress for the checkers and the
// explorer. The obs layer is dependency-free and always compiled in;
// disabled (nil) sinks cost one branch per hook site and no allocations.
type (
	// Metrics is a registry of named atomic counters, gauges and
	// histograms. Share one registry across checkers and explorations,
	// then export it as JSON (MarshalJSON, schema MetricsSchemaVersion)
	// or over HTTP via PublishExpvar.
	Metrics = obs.Metrics
	// MetricsSnapshot is the JSON document a Metrics registry marshals
	// to; it round-trips, so consumers can parse -metrics-json output
	// back into it.
	MetricsSnapshot = obs.Snapshot
	// Tracer receives span-style search hooks: SearchStart, NodeExpand,
	// MemoHit, ElementAdmit, Backtrack, SearchEnd.
	Tracer = obs.Tracer
	// TraceEvent is one recorded tracer hook invocation.
	TraceEvent = obs.Event
	// FlightRecorder is a Tracer retaining the last N events in a ring:
	// negligible steady-state cost, dumped post-mortem on interesting
	// verdicts.
	FlightRecorder = obs.FlightRecorder
	// LogTracer is a Tracer writing sampled JSON lines to an io.Writer.
	LogTracer = obs.LogTracer
	// Progress is one periodic snapshot of a running search: states,
	// rate, ETA against the state budget.
	Progress = obs.Progress
	// LiveRun is the pull-based live view of a running check or
	// exploration: attach one with WithLive and poll Status — the ops
	// server's /statusz endpoint does exactly that.
	LiveRun = obs.LiveRun
	// LiveStatus is the snapshot LiveRun.Status returns: phase, states,
	// rate, ETA and per-worker utilization.
	LiveStatus = obs.LiveStatus
	// WorkerStatus is one worker's share of a LiveStatus snapshot.
	WorkerStatus = obs.WorkerStatus
)

// MetricsSchemaVersion identifies the metrics JSON document shape.
const MetricsSchemaVersion = obs.SchemaVersion

var (
	// NewMetrics returns an empty metrics registry.
	NewMetrics = obs.NewMetrics
	// NewFlightRecorder returns a flight recorder retaining n events.
	NewFlightRecorder = obs.NewFlightRecorder
	// NewLogTracer returns a tracer writing one JSON line per sampled
	// event to w; high-frequency hooks are sampled 1-in-sample.
	NewLogTracer = obs.NewLogTracer
	// MultiTracer fans hooks out to several tracers.
	MultiTracer = obs.MultiTracer
	// ProgressPrinter returns a WithProgress callback printing "label:
	// <snapshot>" status lines to w.
	ProgressPrinter = obs.ProgressPrinter
	// NewLiveRun returns a live run view stamped with the owning tool's
	// name, ready for WithLive and the ops server.
	NewLiveRun = obs.NewLiveRun
	// StartRuntimeSampler periodically samples runtime health (goroutine
	// count, heap gauges, GC pause histogram) into a metrics registry.
	StartRuntimeSampler = obs.StartRuntimeSampler
)
