package calgo

import (
	"context"

	"calgo/internal/sched"
)

// Model checking (§5): the exhaustive interleaving explorer, re-exported
// so explorer callers share the facade's option vocabulary with the
// checkers (WithParallelism, WithMaxStates, WithTracer, WithMetrics,
// WithProgress).
type (
	// ModelState is a node of a model's transition system.
	ModelState = sched.State
	// ModelSucc is one outgoing transition of a model state.
	ModelSucc = sched.Succ
	// ExploreStats summarizes an exploration.
	ExploreStats = sched.Stats
	// ExploreViolation describes a model-check failure together with the
	// schedule that reached it.
	ExploreViolation = sched.ViolationError
	// ExploreStep is one typed step of a counterexample schedule.
	ExploreStep = sched.Step
)

// Exploration abort causes.
var (
	// ErrExploreMaxStates is returned when the exploration exceeds its
	// state budget (WithMaxStates).
	ErrExploreMaxStates = sched.ErrMaxStates
	// ErrExploreInterrupted is returned when the exploration's context is
	// cancelled; errors.Is also matches the context's own error.
	ErrExploreInterrupted = sched.ErrInterrupted
)

// Explore exhaustively explores the transition system rooted at init,
// checking the configured invariant on every state, the transition hook
// on every step and the terminal hook on every maximal execution. The
// context cancels the exploration cooperatively; explorer-applicable
// facade options configure it.
func Explore(ctx context.Context, init ModelState, opts ...Option) (ExploreStats, error) {
	so, err := schedOptions(opts)
	if err != nil {
		return ExploreStats{}, err
	}
	return sched.Explore(ctx, init, so...)
}
