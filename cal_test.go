package calgo_test

import (
	"context"
	"sync"
	"testing"

	"calgo"
)

// TestPublicAPIExchangerRoundTrip exercises the whole public surface the
// way a downstream user would: build an instrumented exchanger, run it,
// capture the history, and verify CAL three ways.
func TestPublicAPIExchangerRoundTrip(t *testing.T) {
	rec := calgo.NewRecorder()
	ex := calgo.NewExchanger("E",
		calgo.ExchangerWithRecorder(rec),
		calgo.ExchangerWithWaitPolicy(calgo.SpinWait(64)),
	)
	var cap calgo.Capture

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := calgo.ThreadID(w + 1)
			for i := 0; i < 10; i++ {
				v := int64(w*1_000 + i)
				cap.Inv(tid, "E", calgo.MethodExchange, calgo.Int(v))
				ok, out := ex.Exchange(tid, v)
				cap.Res(tid, "E", calgo.MethodExchange, calgo.Pair(ok, out))
			}
		}(w)
	}
	wg.Wait()

	h := cap.History()
	tr := rec.View("E")
	if _, err := calgo.SpecAccepts(calgo.NewExchangerSpec("E"), tr); err != nil {
		t.Fatalf("trace rejected: %v", err)
	}
	if err := calgo.Agrees(h, tr); err != nil {
		t.Fatalf("agreement: %v", err)
	}
	r, err := calgo.CAL(context.Background(), h, calgo.NewExchangerSpec("E"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("not CA-linearizable: %s", r.Reason)
	}
}

func TestPublicAPIHistoryParsing(t *testing.T) {
	src := `
inv t1 E.exchange 3
inv t2 E.exchange 4
res t1 E.exchange (true,4)
res t2 E.exchange (true,3)
`
	h, err := calgo.ParseHistory(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := calgo.CAL(context.Background(), h, calgo.NewExchangerSpec("E"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("paper swap history rejected: %s", r.Reason)
	}
	lin, err := calgo.Linearizable(context.Background(), h, calgo.NewExchangerSpec("E"))
	if err != nil {
		t.Fatal(err)
	}
	if lin.OK {
		t.Fatal("swap history must not be sequentially explainable")
	}
	if calgo.FormatHistory(h) == "" {
		t.Error("FormatHistory returned empty")
	}
}

func TestPublicAPIElimStack(t *testing.T) {
	es, err := calgo.NewElimStack("ES", calgo.ElimStackWithSlots(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := es.Push(1, 42); err != nil {
		t.Fatal(err)
	}
	if v := es.Pop(1); v != 42 {
		t.Fatalf("Pop = %d", v)
	}
	if err := es.Push(1, calgo.PopSentinel); err == nil {
		t.Error("pushing the sentinel must fail")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	ls := calgo.NewLockStack()
	ls.Push(1, 5)
	if ok, v := ls.Pop(1); !ok || v != 5 {
		t.Fatal("lock stack broken")
	}
	ts := calgo.NewTreiberStack("S")
	ts.Push(1, 6)
	if ok, v := ts.Pop(1); !ok || v != 6 {
		t.Fatal("treiber stack broken")
	}
}
