package calgo

import (
	"calgo/internal/check"
	"calgo/internal/render"
)

// Rendering (verdict explainability): the structured evidence behind a
// verdict and the formatters that turn it into per-thread timelines,
// Graphviz DOT and self-contained run reports.
type (
	// Explanation is the structured evidence attached to every Result:
	// the history's operations, the (full or deepest-partial) witness
	// CA-trace, and derived views of the matched surjection and of the
	// operations the search could not linearize.
	Explanation = check.Explanation
	// TimelineOptions configures RenderTimeline.
	TimelineOptions = render.TimelineOptions
	// Report is the calgo.report/v1 run-report document.
	Report = render.Report
	// RunReport is one checked input within a Report.
	RunReport = render.Run
)

// ReportSchemaVersion is the schema identifier of the Report document.
const ReportSchemaVersion = render.ReportSchema

// Rendering entry points, re-exported from internal/render.
var (
	// RenderTimeline renders an explanation as per-thread lanes with the
	// concurrency windows marked and each operation's fate annotated.
	RenderTimeline = render.Timeline
	// RenderDOT renders an explanation as a Graphviz digraph of the
	// real-time order with the CA-element partition as clusters.
	RenderDOT = render.DOT
	// RenderScheduleTimeline renders an explorer counterexample schedule
	// as per-thread lanes over the step axis.
	RenderScheduleTimeline = render.ScheduleTimeline
	// RenderScheduleDOT renders an explorer counterexample schedule as a
	// linear Graphviz chain ending at the violating state.
	RenderScheduleDOT = render.ScheduleDOT
	// ValidateDOT syntactically checks a DOT document without graphviz.
	ValidateDOT = render.ValidateDOT
	// VerdictWord maps a Verdict to the CLI vocabulary (OK, VIOLATION,
	// UNKNOWN) used by reports and the exit-code legend.
	VerdictWord = render.VerdictWord
	// NewReport returns a Report skeleton with schema and time stamped.
	NewReport = render.NewReport
)
