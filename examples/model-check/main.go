// Command model-check discharges the paper's §5 proof obligations
// mechanically, on a bounded universe, for both verification targets:
//
//   - the exchanger of Figure 1: every interleaving of the Figure 3 client
//     program is explored; Figure 1's proof-outline assertions and the
//     invariant J hold in every state; every transition is justified by a
//     Figure 4 rely/guarantee action; and every terminal history agrees
//     with its recorded CA-trace, which the exchanger spec admits;
//
//   - the elimination stack of Figure 2: every interleaving of a
//     contended push/push/pop program is explored, and every terminal
//     history is linearizable w.r.t. the SEQUENTIAL stack spec via the
//     composed view F_ES ∘ F̂_AR.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"

	"calgo/internal/model"
	"calgo/internal/rg"
	"calgo/internal/sched"
	"calgo/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "model-check:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== Obligation 1: the exchanger (Figure 1 + Figure 4) ==")
	init := model.NewExchanger(model.ExchangerConfig{
		Programs: [][]int64{{3}, {4}, {7}}, // the paper's program P
	})
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithInvariant(func(st sched.State) error {
			if err := model.InvariantJ(st); err != nil {
				return err
			}
			return model.ProofOutline(st)
		}),
		sched.WithTransition(rg.Hook(true)),
		sched.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, true)),
		sched.WithParallelism(runtime.GOMAXPROCS(0)))
	if err != nil {
		return fmt.Errorf("exchanger verification FAILED: %w", err)
	}
	fmt.Printf("✓ %d states, %d transitions, %d maximal executions — all obligations hold\n",
		stats.States, stats.Transitions, stats.Terminals)
	fmt.Println("  • proof-outline assertions A, B and lines 14-37 of Fig. 1: checked per state")
	fmt.Println("  • invariant J: checked per state")
	fmt.Println("  • rely/guarantee: every step justified by INIT/CLEAN/PASS/XCHG/FAIL/τ")
	fmt.Println("  • every terminal history ⊑CAL its recorded trace ∈ exchanger spec")

	fmt.Println()
	fmt.Println("== Obligation 2: the elimination stack (Figure 2, via F_ES ∘ F̂_AR) ==")
	esInit := model.NewElimStack(model.ESConfig{
		Slots:   1,
		Retries: 2,
		Programs: [][]model.StackOp{
			{model.Push(1)},
			{model.Push(2)},
			{model.Pop()},
		},
	})
	esStats, err := sched.Explore(context.Background(),
		esInit,
		sched.WithTerminal(model.VerifyCAL(spec.NewStack("ES"), esInit.Project, true)),
		sched.WithDeadlockAllowed(),
		sched.WithMaxStates(4_000_000),
		sched.WithParallelism(runtime.GOMAXPROCS(0)))
	if err != nil {
		return fmt.Errorf("elimination stack verification FAILED: %w", err)
	}
	fmt.Printf("✓ %d states, %d transitions, %d maximal executions — all obligations hold\n",
		esStats.States, esStats.Transitions, esStats.Terminals)
	fmt.Println("  • every terminal history is linearizable w.r.t. the sequential stack spec")
	fmt.Println("  • elimination and central-stack paths both exercised")

	fmt.Println()
	fmt.Println("== Sanity: the battery actually catches bugs ==")
	for _, bug := range []string{"drop-pass-log", "wrong-swap-values", "late-swap-log"} {
		buggy := model.NewExchanger(model.ExchangerConfig{
			Programs: [][]int64{{3}, {4}},
			Bug:      bug,
		})
		_, err := sched.Explore(context.Background(),
			buggy,
			sched.WithInvariant(func(st sched.State) error {
				if err := model.InvariantJ(st); err != nil {
					return err
				}
				return model.ProofOutline(st)
			}),
			sched.WithTransition(rg.Hook(false)),
			sched.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, true)),
			sched.WithParallelism(runtime.GOMAXPROCS(0)))
		if err == nil {
			return fmt.Errorf("injected bug %q escaped verification", bug)
		}
		var verr *sched.ViolationError
		if !errors.As(err, &verr) {
			return fmt.Errorf("bug %q: unexpected error %w", bug, err)
		}
		fmt.Printf("✓ injected %-18s caught as %s violation\n", bug+":", verr.Kind)
	}
	return nil
}
