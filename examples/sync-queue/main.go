// Command sync-queue demonstrates the paper's second exchanger client: a
// synchronous hand-off queue driving a two-stage pipeline. Producers hand
// items directly to consumers — put and take "seem to take effect
// simultaneously" — and the run is verified against the synchronous queue
// CA-specification, which (like the exchanger's) has no useful sequential
// counterpart.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"calgo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sync-queue:", err)
		os.Exit(1)
	}
}

func run() error {
	rec := calgo.NewRecorder()
	q := calgo.NewSyncQueue("SQ",
		calgo.SyncQueueWithRecorder(rec),
		calgo.SyncQueueWithWaitPolicy(calgo.SpinWait(64)),
	)

	// Pipeline: producers hand raw items to workers; each hand-off is a
	// rendezvous, so no item is ever buffered.
	const producers = 3
	const itemsPer = 40
	var cap calgo.Capture
	var wg sync.WaitGroup
	var processed sync.Map
	for p := 0; p < producers; p++ {
		wg.Add(2)
		go func(p int) { // producer
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < itemsPer; i++ {
				item := int64(p*1_000 + i)
				cap.Inv(tid, "SQ", calgo.MethodPut, calgo.Int(item))
				q.Put(tid, item)
				cap.Res(tid, "SQ", calgo.MethodPut, calgo.Bool(true))
			}
		}(p)
		go func(p int) { // consumer
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < itemsPer; i++ {
				cap.Inv(tid, "SQ", calgo.MethodTake, calgo.Unit())
				item := q.Take(tid)
				cap.Res(tid, "SQ", calgo.MethodTake, calgo.Pair(true, item))
				processed.Store(item, item*item) // the "work"
			}
		}(p)
	}
	wg.Wait()

	count := 0
	processed.Range(func(_, _ any) bool { count++; return true })
	fmt.Printf("pipeline processed %d distinct items via rendezvous\n", count)
	if count != producers*itemsPer {
		return fmt.Errorf("lost items: processed %d of %d", count, producers*itemsPer)
	}

	h := cap.History()
	tr := rec.View("SQ")
	if _, err := calgo.SpecAccepts(calgo.NewSyncQueueSpec("SQ"), tr); err != nil {
		return fmt.Errorf("trace violates the sync-queue spec: %w", err)
	}
	fmt.Println("✓ recorded trace admitted by the synchronous queue CA-specification")

	if err := calgo.Agrees(h, tr); err != nil {
		return fmt.Errorf("history disagrees with trace: %w", err)
	}
	fmt.Println("✓ observed history agrees with the recorded trace")

	r, err := calgo.CAL(context.Background(), h, calgo.NewSyncQueueSpec("SQ"))
	if err != nil {
		return err
	}
	if !r.OK {
		return fmt.Errorf("checker rejected the history: %s", r.Reason)
	}
	fmt.Printf("✓ CAL checker accepts the history (%d states)\n", r.States)

	lin, err := calgo.Linearizable(context.Background(), h, calgo.NewSyncQueueSpec("SQ"))
	if err != nil {
		return err
	}
	if lin.OK {
		return fmt.Errorf("hand-off history unexpectedly passed the sequential reading")
	}
	fmt.Println("✓ sequential reading rejects the history: successful hand-offs cannot stand alone")
	return nil
}
