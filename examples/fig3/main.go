// Command fig3 reproduces Figure 3 of the paper — the argument that no
// useful sequential specification exists for the exchanger — as an
// executable accept/reject matrix over the histories H1, H2 and H3 of the
// client program
//
//	P = t1: exchange(3) || t2: exchange(4) || t3: exchange(7)
package main

import (
	"context"
	"fmt"
	"os"

	"calgo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
}

func mustParse(src string) calgo.History {
	h, err := calgo.ParseHistory(src)
	if err != nil {
		panic(err)
	}
	return h
}

func run() error {
	// H1: all three operations overlap; t1 and t2 swap, t3 fails.
	h1 := mustParse(`
inv t1 E.exchange 3
inv t2 E.exchange 4
inv t3 E.exchange 7
res t1 E.exchange (true,4)
res t2 E.exchange (true,3)
res t3 E.exchange (false,7)
`)
	// H2: a CA-history — the swap pair overlaps, t3 runs after.
	h2 := mustParse(`
inv t1 E.exchange 3
inv t2 E.exchange 4
res t1 E.exchange (true,4)
res t2 E.exchange (true,3)
inv t3 E.exchange 7
res t3 E.exchange (false,7)
`)
	// H3: the undesired sequential "explanation" of H1.
	h3 := mustParse(`
inv t1 E.exchange 3
res t1 E.exchange (true,4)
inv t2 E.exchange 4
res t2 E.exchange (true,3)
inv t3 E.exchange 7
res t3 E.exchange (false,7)
`)
	// H3': the prefix of H3 in which only t1 ran — a thread exchanged an
	// item without ever finding a partner. Any prefix-closed spec that
	// admits H3 must admit H3' too; this is the contradiction.
	h3prefix := mustParse(`
inv t1 E.exchange 3
res t1 E.exchange (true,4)
`)

	e := calgo.NewExchangerSpec("E")
	rows := []struct {
		name string
		h    calgo.History
		// expectations
		cal, lin bool
	}{
		{"H1 (all overlap)", h1, true, false},
		{"H2 (swap then fail)", h2, true, false},
		{"H3 (sequential)", h3, false, false},
		{"H3' (lone success prefix)", h3prefix, false, false},
	}

	fmt.Println("history                       CAL    linearizable")
	fmt.Println("--------------------------------------------------")
	for _, row := range rows {
		cal, err := calgo.CAL(context.Background(), row.h, e)
		if err != nil {
			return err
		}
		lin, err := calgo.Linearizable(context.Background(), row.h, e)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s  %-5v  %v\n", row.name, cal.OK, lin.OK)
		if cal.OK != row.cal || lin.OK != row.lin {
			return fmt.Errorf("%s: got (CAL=%v, lin=%v), paper says (%v, %v)",
				row.name, cal.OK, lin.OK, row.cal, row.lin)
		}
		if cal.OK {
			fmt.Printf("  witness: %s\n", cal.Witness)
		}
	}

	fmt.Println()
	fmt.Println("Conclusion (as in §3): CAL explains exactly the desired behaviours of P,")
	fmt.Println("while any sequential spec either rejects H1/H2 (too restrictive) or, by")
	fmt.Println("prefix closure, must also admit H3' — a partnerless successful exchange")
	fmt.Println("(too loose). The exchanger has no useful sequential specification.")
	return nil
}
