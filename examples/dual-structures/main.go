// Command dual-structures demonstrates the two CA-objects from the
// paper's related work (§6) that go beyond pairwise concurrency:
//
//   - the dual stack of Scherer & Scott, whose waiting pops are fulfilled
//     by later pushes — CAL logs the fulfilment as ONE CA-element, where
//     the original dual-data-structures formulation needs separate
//     "request" and "follow-up" linearization points;
//
//   - the one-shot immediate atomic snapshot of Borowsky & Gafni —
//     Neiger's motivating example for set-linearizability — whose blocks
//     are CA-elements of size up to n.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"calgo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dual-structures:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := dualStack(); err != nil {
		return fmt.Errorf("dual stack: %w", err)
	}
	fmt.Println()
	return immediateSnapshot()
}

func dualStack() error {
	fmt.Println("== Dual stack: pops wait, pushes fulfil ==")
	rec := calgo.NewRecorder()
	s := calgo.NewDualStack("DS",
		calgo.DualStackWithRecorder(rec),
		calgo.DualStackWithWaitPolicy(calgo.SpinWait(1)),
	)

	var cap calgo.Capture
	const pairs = 3
	const per = 20
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*1_000 + i)
				cap.Inv(tid, "DS", calgo.MethodPush, calgo.Int(v))
				s.Push(tid, v)
				cap.Res(tid, "DS", calgo.MethodPush, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "DS", calgo.MethodPop, calgo.Unit())
				v := s.Pop(tid) // waits when empty
				cap.Res(tid, "DS", calgo.MethodPop, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()

	h := cap.History()
	tr := rec.View("DS")
	fulfilments := 0
	for _, el := range tr {
		if el.Size() == 2 {
			fulfilments++
		}
	}
	fmt.Printf("ran %d ops; %d pops were fulfilled while waiting (one CA-element each)\n",
		2*pairs*per, fulfilments)

	sp := calgo.NewDualStackSpec("DS")
	if _, err := calgo.SpecAccepts(sp, tr); err != nil {
		return err
	}
	if err := calgo.Agrees(h, tr); err != nil {
		return err
	}
	r, err := calgo.CAL(context.Background(), h, sp)
	if err != nil {
		return err
	}
	if !r.OK {
		return fmt.Errorf("not CA-linearizable: %s", r.Reason)
	}
	fmt.Println("✓ dual stack run verified against the dual-stack CA-spec (trace ∈ spec, H ⊑CAL T, checker)")
	return nil
}

func immediateSnapshot() error {
	fmt.Println("== Immediate atomic snapshot: blocks of simultaneous updates ==")
	const n = 5
	s, err := calgo.NewImmediateSnapshot("IS", n)
	if err != nil {
		return err
	}
	var cap calgo.Capture
	results := make([]calgo.SnapshotResult, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(p + 1)
			v := int64(100 + p)
			cap.Inv(tid, "IS", calgo.MethodUpdate, calgo.Int(v))
			view, err := s.Update(p, tid, v)
			if err != nil {
				panic(err) // slots are distinct by construction
			}
			cap.Res(tid, "IS", calgo.MethodUpdate, calgo.Pair(true, int64(len(view))))
			results[p] = calgo.SnapshotResult{Thread: tid, Value: v, View: view}
		}(p)
	}
	wg.Wait()

	tr, err := calgo.DeriveSnapshotTrace("IS", results)
	if err != nil {
		return err
	}
	fmt.Println("blocks of this run:")
	for _, el := range tr {
		fmt.Printf("  %s\n", el)
	}

	sp := calgo.NewSnapshotSpec("IS", n)
	if _, err := calgo.SpecAccepts(sp, tr); err != nil {
		return err
	}
	if err := calgo.Agrees(cap.History(), tr); err != nil {
		return err
	}
	r, err := calgo.CAL(context.Background(), cap.History(), sp)
	if err != nil {
		return err
	}
	if !r.OK {
		return fmt.Errorf("not CA-linearizable: %s", r.Reason)
	}
	fmt.Println("✓ snapshot run verified (containment, immediacy and self-inclusion via the CA-spec)")
	return nil
}
