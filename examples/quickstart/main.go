// Command quickstart is the five-minute tour of the library: run a real
// instrumented exchanger under concurrency, capture its observable history
// and auxiliary CA-trace, and verify concurrency-aware linearizability
// three independent ways.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"calgo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. An exchanger instrumented with the auxiliary-trace recorder 𝒯.
	rec := calgo.NewRecorder()
	ex := calgo.NewExchanger("E",
		calgo.ExchangerWithRecorder(rec),
		calgo.ExchangerWithWaitPolicy(calgo.SpinWait(128)),
	)

	// 2. Run it: eight goroutines each attempt a few exchanges, while a
	// Capture records the observable history at the interface.
	var cap calgo.Capture
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := calgo.ThreadID(w + 1)
			for i := 0; i < 5; i++ {
				v := int64(w*100 + i)
				cap.Inv(tid, "E", calgo.MethodExchange, calgo.Int(v))
				ok, out := ex.Exchange(tid, v)
				cap.Res(tid, "E", calgo.MethodExchange, calgo.Pair(ok, out))
			}
		}(w)
	}
	wg.Wait()

	h := cap.History()
	tr := rec.View("E")
	fmt.Printf("captured %d actions, recorded %d CA-elements\n", len(h), len(tr))

	// 3a. The recorded trace is admitted by the exchanger CA-spec.
	if _, err := calgo.SpecAccepts(calgo.NewExchangerSpec("E"), tr); err != nil {
		return fmt.Errorf("recorded trace violates the spec: %w", err)
	}
	fmt.Println("✓ recorded CA-trace admitted by the exchanger specification")

	// 3b. The observed history agrees with the recorded trace (Def. 5).
	if err := calgo.Agrees(h, tr); err != nil {
		return fmt.Errorf("history disagrees with trace: %w", err)
	}
	fmt.Println("✓ observed history agrees with the recorded CA-trace (H ⊑CAL T)")

	// 3c. The CAL decision procedure finds a witness independently
	// (Def. 6), without being shown the recorded trace.
	r, err := calgo.CAL(context.Background(), h, calgo.NewExchangerSpec("E"))
	if err != nil {
		return err
	}
	if !r.OK {
		return fmt.Errorf("checker rejected the history: %s", r.Reason)
	}
	fmt.Printf("✓ CAL checker accepts the history (%d states explored)\n", r.States)

	// 4. And the punchline of the paper: the same history is NOT
	// explainable under classical linearizability as soon as any swap
	// succeeded — sequential specifications cannot describe exchangers.
	lin, err := calgo.Linearizable(context.Background(), h, calgo.NewExchangerSpec("E"))
	if err != nil {
		return err
	}
	swaps := 0
	for _, el := range tr {
		if el.Size() == 2 {
			swaps++
		}
	}
	if swaps > 0 && lin.OK {
		return fmt.Errorf("unexpected: history with %d swaps passed the sequential check", swaps)
	}
	if swaps > 0 {
		fmt.Printf("✓ with %d successful swaps, the sequential (linearizability) reading rejects the history\n", swaps)
	} else {
		fmt.Println("  (no swap happened this run — all exchanges failed, which IS sequentially explainable)")
	}
	return nil
}
