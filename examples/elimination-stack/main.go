// Command elimination-stack runs the paper's headline client — the
// elimination stack of Hendler et al. (Figure 2) — with full
// instrumentation, and verifies the paper's main theorem on a real
// execution: composed from a CA-linearizable exchanger layer and a
// linearizable central stack, the elimination stack is linearizable with
// respect to the ordinary SEQUENTIAL stack specification, via the view
// functions F_AR and F_ES of §5.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"calgo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elimination-stack:", err)
		os.Exit(1)
	}
}

func run() error {
	rec := calgo.NewRecorder()
	es, err := calgo.NewElimStack("ES",
		calgo.ElimStackWithRecorder(rec),
		calgo.ElimStackWithSlots(2),
		calgo.ElimStackWithWaitPolicy(calgo.SpinWait(64)),
	)
	if err != nil {
		return err
	}

	// Balanced producers and consumers hammer the stack.
	const pairs = 4
	const per = 50
	var cap calgo.Capture
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, "ES", calgo.MethodPush, calgo.Int(v))
				if err := es.Push(tid, v); err != nil {
					panic(err) // cannot happen: v is never the sentinel
				}
				cap.Res(tid, "ES", calgo.MethodPush, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "ES", calgo.MethodPop, calgo.Unit())
				v := es.Pop(tid)
				cap.Res(tid, "ES", calgo.MethodPop, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()

	h := cap.History()
	raw := rec.Snapshot()
	esTrace := rec.View("ES")

	// How much work the elimination layer absorbed.
	eliminations, centralOps := 0, 0
	for _, el := range raw {
		switch {
		case el.Size() == 2:
			eliminations++
		case el.Object == "ES.S" && el.Ops[0].Ret.String() != "false" && el.Ops[0].Ret.String() != "(false,0)":
			centralOps++
		}
	}
	fmt.Printf("ran %d ops: %d raw CA-elements, %d exchanger pairings, %d successful central-stack ops\n",
		2*pairs*per, len(raw), eliminations, centralOps)

	// (i) The elimination stack's derived trace satisfies the ordinary
	// sequential stack spec.
	if _, err := calgo.SpecAccepts(calgo.NewStackSpec("ES"), esTrace); err != nil {
		return fmt.Errorf("derived ES trace violates the stack spec: %w", err)
	}
	fmt.Println("✓ F_ES ∘ F̂_AR derived trace satisfies the sequential stack specification")

	// (ii) The observed ES history agrees with the derived trace.
	if err := calgo.Agrees(h, esTrace); err != nil {
		return fmt.Errorf("history disagrees with derived trace: %w", err)
	}
	fmt.Println("✓ observed history agrees with the derived trace (Definition 5)")

	// (iii) Independent confirmation by the checker.
	r, err := calgo.Linearizable(context.Background(), h, calgo.NewStackSpec("ES"))
	if err != nil {
		return err
	}
	if !r.OK {
		return fmt.Errorf("checker rejected the ES history: %s", r.Reason)
	}
	fmt.Printf("✓ checker confirms linearizability (%d states)\n", r.States)

	// (iv) Modularity: each subobject's view satisfies its own spec,
	// independently of how the elimination stack uses it.
	if _, err := calgo.SpecAccepts(calgo.NewCentralStackSpec("ES.S"), rec.View("ES.S")); err != nil {
		return fmt.Errorf("central stack view: %w", err)
	}
	if _, err := calgo.SpecAccepts(calgo.NewElimArraySpec("ES.AR"), rec.View("ES.AR")); err != nil {
		return fmt.Errorf("elimination array view: %w", err)
	}
	fmt.Println("✓ subobject views satisfy their own specifications (modular verification)")
	return nil
}
