// Benchmarks regenerating the experiment series of EXPERIMENTS.md with
// testing.B. Each Benchmark* family corresponds to one experiment row
// (B1-B6 plus the checker/model-checker cost series B3/B4 and the
// instrumentation-overhead ablation A1); cmd/calbench prints the same
// measurements as wall-clock sweep tables.
package calgo_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"calgo"
	"calgo/internal/model"
	"calgo/internal/sched"
	"calgo/internal/spec"
)

// tidCounter hands out distinct thread ids to RunParallel workers.
var tidCounter atomic.Int64

func nextTid() calgo.ThreadID { return calgo.ThreadID(tidCounter.Add(1)) }

// ---- B1: stack throughput (elimination vs Treiber vs lock) ----

func benchStack(b *testing.B, push func(calgo.ThreadID, int64), pop func(calgo.ThreadID)) {
	b.Helper()
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.SetParallelism(par)
			b.RunParallel(func(pb *testing.PB) {
				tid := nextTid()
				for pb.Next() {
					push(tid, int64(tid))
					pop(tid)
				}
			})
		})
	}
}

func BenchmarkStacksTreiber(b *testing.B) {
	s := calgo.NewTreiberStack("S")
	benchStack(b,
		func(t calgo.ThreadID, v int64) { s.Push(t, v) },
		func(t calgo.ThreadID) { s.Pop(t) })
}

func BenchmarkStacksElimination(b *testing.B) {
	s, err := calgo.NewElimStack("ES", calgo.ElimStackWithSlots(4), calgo.ElimStackWithWaitPolicy(calgo.SpinWait(1)))
	if err != nil {
		b.Fatal(err)
	}
	benchStack(b,
		func(t calgo.ThreadID, v int64) { _ = s.Push(t, v) },
		func(t calgo.ThreadID) { s.Pop(t) })
}

func BenchmarkStacksLock(b *testing.B) {
	s := calgo.NewLockStack()
	benchStack(b,
		func(t calgo.ThreadID, v int64) { s.Push(t, v) },
		func(t calgo.ThreadID) { s.Pop(t) })
}

// ---- B2: exchanger pairing throughput ----

func BenchmarkExchangerCAS(b *testing.B) {
	ex := calgo.NewExchanger("E", calgo.ExchangerWithWaitPolicy(calgo.SpinWait(1)))
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		tid := nextTid()
		for pb.Next() {
			ex.Exchange(tid, int64(tid))
		}
	})
}

func BenchmarkExchangerLock(b *testing.B) {
	ex := calgo.NewLockExchanger(50 * time.Microsecond)
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		tid := nextTid()
		for pb.Next() {
			ex.Exchange(tid, int64(tid))
		}
	})
}

// ---- B3: CAL checker cost vs history size and element width ----

// swapHistory builds a valid exchanger history of n sequential swap rounds
// between 2k overlapping threads per round.
func swapHistory(rounds, pairsPerRound int) calgo.History {
	var h calgo.History
	v := int64(0)
	for r := 0; r < rounds; r++ {
		base := calgo.ThreadID(1)
		for p := 0; p < pairsPerRound; p++ {
			t1, t2 := base+calgo.ThreadID(2*p), base+calgo.ThreadID(2*p+1)
			h = append(h,
				calgo.Inv(t1, "E", calgo.MethodExchange, calgo.Int(v)),
				calgo.Inv(t2, "E", calgo.MethodExchange, calgo.Int(v+1)),
			)
			v += 2
		}
		for p := 0; p < pairsPerRound; p++ {
			t1, t2 := base+calgo.ThreadID(2*p), base+calgo.ThreadID(2*p+1)
			w := v - int64(2*(pairsPerRound-p))
			h = append(h,
				calgo.Res(t1, "E", calgo.MethodExchange, calgo.Pair(true, w+1)),
				calgo.Res(t2, "E", calgo.MethodExchange, calgo.Pair(true, w)),
			)
		}
	}
	return h
}

func BenchmarkCheckerCAL(b *testing.B) {
	for _, cfg := range []struct{ rounds, pairs int }{
		{5, 1}, {20, 1}, {5, 2}, {10, 2}, {5, 3},
	} {
		h := swapHistory(cfg.rounds, cfg.pairs)
		sp := calgo.NewExchangerSpec("E")
		b.Run(fmt.Sprintf("ops=%d/width=%d", len(h)/2, 2*cfg.pairs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := calgo.CAL(context.Background(), h, sp)
				if err != nil || !r.OK {
					b.Fatalf("CAL failed: %v %s", err, r.Reason)
				}
			}
		})
	}
}

// BenchmarkCheckerMemoAblation quantifies design decision 3 of DESIGN.md:
// Lowe-style memoization of failed search nodes.
func BenchmarkCheckerMemoAblation(b *testing.B) {
	h := swapHistory(6, 2)
	sp := calgo.NewExchangerSpec("E")
	b.Run("memo=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r, err := calgo.CAL(context.Background(), h, sp); err != nil || !r.OK {
				b.Fatal(err, r.Reason)
			}
		}
	})
	b.Run("memo=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r, err := calgo.CAL(context.Background(), h, sp, calgo.WithoutMemo()); err != nil || !r.OK {
				b.Fatal(err, r.Reason)
			}
		}
	})
}

// BenchmarkCheckerLinVsCAL compares the sequential special case against the
// general search on the same (all-fail, hence sequentially explainable)
// history.
func BenchmarkCheckerLinVsCAL(b *testing.B) {
	var h calgo.History
	for i := 0; i < 50; i++ {
		t := calgo.ThreadID(i%4 + 1)
		h = append(h,
			calgo.Inv(t, "E", calgo.MethodExchange, calgo.Int(int64(i))),
			calgo.Res(t, "E", calgo.MethodExchange, calgo.Pair(false, int64(i))),
		)
	}
	sp := calgo.NewExchangerSpec("E")
	b.Run("lin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r, err := calgo.Linearizable(context.Background(), h, sp); err != nil || !r.OK {
				b.Fatal(err, r.Reason)
			}
		}
	})
	b.Run("cal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r, err := calgo.CAL(context.Background(), h, sp); err != nil || !r.OK {
				b.Fatal(err, r.Reason)
			}
		}
	})
}

// BenchmarkAgrees measures the Definition 5 matcher on a forced matching.
func BenchmarkAgrees(b *testing.B) {
	for _, rounds := range []int{10, 40} {
		h := swapHistory(rounds, 1)
		var tr calgo.Trace
		v := int64(0)
		for r := 0; r < rounds; r++ {
			tr = append(tr, spec.SwapElement("E", 1, v, 2, v+1))
			v += 2
		}
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := calgo.Agrees(h, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCALHotPath measures checker node throughput (states/sec) on
// the B3 swap-history generator: the series gating the bitset +
// incremental-ready rewrite of the search core (before/after numbers in
// EXPERIMENTS.md §B10).
func BenchmarkCALHotPath(b *testing.B) {
	for _, cfg := range []struct{ rounds, pairs int }{
		{20, 1}, {40, 1}, {10, 2}, {20, 2}, {10, 3},
	} {
		h := swapHistory(cfg.rounds, cfg.pairs)
		// The checker is built once outside the loop: batch callers reuse
		// one Checker, so the hot path under measurement is Check alone.
		c, err := calgo.NewChecker(calgo.NewExchangerSpec("E"))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ops=%d/width=%d", len(h)/2, 2*cfg.pairs), func(b *testing.B) {
			b.ReportAllocs()
			states := 0
			for i := 0; i < b.N; i++ {
				r, err := c.Check(context.Background(), h)
				if err != nil || !r.OK {
					b.Fatalf("CAL failed: %v %s", err, r.Reason)
				}
				states = r.States
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})
	}
}

// ---- B4: model checker cost ----

func BenchmarkExploreExchanger(b *testing.B) {
	for _, threads := range []int{2, 3} {
		programs := make([][]int64, threads)
		for t := range programs {
			programs[t] = []int64{int64(t + 1)}
		}
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				init := model.NewExchanger(model.ExchangerConfig{Programs: programs})
				stats, err := sched.Explore(context.Background(),
					init,
					sched.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, false)))
				if err != nil {
					b.Fatal(err)
				}
				states = stats.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

func BenchmarkExploreExchangerFullBattery(b *testing.B) {
	// Same exploration with all checks on: measures the verification
	// overhead of the proof-outline + rely/guarantee hooks.
	programs := [][]int64{{1}, {2}, {3}}
	for i := 0; i < b.N; i++ {
		init := model.NewExchanger(model.ExchangerConfig{Programs: programs})
		_, err := sched.Explore(context.Background(),
			init,
			sched.WithInvariant(func(st sched.State) error {
				if err := model.InvariantJ(st); err != nil {
					return err
				}
				return model.ProofOutline(st)
			}),
			sched.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, true)))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExploreElimStack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		init := model.NewElimStack(model.ESConfig{
			Slots:   1,
			Retries: 2,
			Programs: [][]model.StackOp{
				{model.Push(1)}, {model.Pop()},
			},
		})
		_, err := sched.Explore(context.Background(),
			init,
			sched.WithTerminal(model.VerifyCAL(spec.NewStack("ES"), init.Project, false)),
			sched.WithDeadlockAllowed())
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreParallel sweeps the work-stealing engine's worker count
// over the F1 (exchanger, 12,223 states) and F2 (elimination stack,
// 61,851 states) models; the EXPERIMENTS.md speedup table comes from this
// series. State counts are identical at every worker count.
func BenchmarkExploreParallel(b *testing.B) {
	mkF1 := func() (sched.State, []sched.Option) {
		init := model.NewExchanger(model.ExchangerConfig{Programs: [][]int64{{3}, {4}, {7}}})
		return init, []sched.Option{sched.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, false))}
	}
	mkF2 := func() (sched.State, []sched.Option) {
		init := model.NewElimStack(model.ESConfig{
			Slots:   1,
			Retries: 2,
			Programs: [][]model.StackOp{
				{model.Push(1)}, {model.Push(2)}, {model.Pop()},
			},
		})
		return init, []sched.Option{
			sched.WithTerminal(model.VerifyCAL(spec.NewStack("ES"), init.Project, false)),
			sched.WithDeadlockAllowed(),
		}
	}
	for _, m := range []struct {
		name string
		mk   func() (sched.State, []sched.Option)
	}{{"F1", mkF1}, {"F2", mkF2}} {
		for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("%s/workers=%d", m.name, workers), func(b *testing.B) {
				var states int
				for i := 0; i < b.N; i++ {
					init, opts := m.mk()
					opts = append(opts, sched.WithParallelism(workers))
					stats, err := sched.Explore(context.Background(), init, opts...)
					if err != nil {
						b.Fatal(err)
					}
					states = stats.States
				}
				b.ReportMetric(float64(states), "states")
			})
		}
	}
}

// ---- B5: synchronous queue hand-off throughput ----

func BenchmarkSyncQueue(b *testing.B) {
	q := calgo.NewSyncQueue("SQ", calgo.SyncQueueWithWaitPolicy(calgo.SpinWait(1)))
	b.SetParallelism(2)
	b.RunParallel(func(pb *testing.PB) {
		tid := nextTid()
		for pb.Next() {
			if tid%2 == 0 {
				q.TryPut(tid, int64(tid))
			} else {
				q.TryTake(tid)
			}
		}
	})
}

// ---- B6: elimination array width ablation ----

func BenchmarkElimK(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			es, err := calgo.NewElimStack("ES", calgo.ElimStackWithSlots(k), calgo.ElimStackWithWaitPolicy(calgo.SpinWait(1)))
			if err != nil {
				b.Fatal(err)
			}
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				tid := nextTid()
				for pb.Next() {
					_ = es.Push(tid, int64(tid))
					es.Pop(tid)
				}
			})
		})
	}
}

// ---- B7: FIFO queues ----

func BenchmarkQueueMichaelScott(b *testing.B) {
	q := calgo.NewMSQueue("Q")
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		tid := nextTid()
		for pb.Next() {
			q.Enq(tid, int64(tid))
			q.Deq(tid)
		}
	})
}

func BenchmarkQueueLock(b *testing.B) {
	q := calgo.NewLockQueue()
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		tid := nextTid()
		for pb.Next() {
			q.Enq(tid, int64(tid))
			q.Deq(tid)
		}
	})
}

// ---- B8: dual stack hand-offs ----

func BenchmarkDualStack(b *testing.B) {
	s := calgo.NewDualStack("DS", calgo.DualStackWithWaitPolicy(calgo.SpinWait(1)))
	b.SetParallelism(2)
	b.RunParallel(func(pb *testing.PB) {
		tid := nextTid()
		for pb.Next() {
			if tid%2 == 0 {
				s.Push(tid, int64(tid))
			} else {
				s.TryPop(tid, 4)
			}
		}
	})
}

// ---- B9: checker on wide CA-elements (immediate snapshot blocks) ----

func BenchmarkCheckerSnapshotBlocks(b *testing.B) {
	for _, n := range []int{3, 5} {
		// All n participants overlap and form one block of size n.
		var h calgo.History
		for p := 0; p < n; p++ {
			h = append(h, calgo.Inv(calgo.ThreadID(p+1), "IS", calgo.MethodUpdate, calgo.Int(int64(p))))
		}
		for p := 0; p < n; p++ {
			h = append(h, calgo.Res(calgo.ThreadID(p+1), "IS", calgo.MethodUpdate, calgo.Pair(true, int64(n))))
		}
		sp := calgo.NewSnapshotSpec("IS", n)
		b.Run(fmt.Sprintf("block=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := calgo.CAL(context.Background(), h, sp)
				if err != nil || !r.OK {
					b.Fatalf("CAL failed: %v %s", err, r.Reason)
				}
			}
		})
	}
}

// ---- A1: instrumentation overhead ablation ----

// BenchmarkInstrumentationOverhead measures the cost of the auxiliary-trace
// recorder on the exchanger fast path (uninstrumented vs instrumented).
func BenchmarkInstrumentationOverhead(b *testing.B) {
	b.Run("plain", func(b *testing.B) {
		ex := calgo.NewExchanger("E", calgo.ExchangerWithWaitPolicy(calgo.NoWait{}))
		tid := nextTid()
		for i := 0; i < b.N; i++ {
			ex.Exchange(tid, int64(i))
		}
	})
	b.Run("recorded", func(b *testing.B) {
		rec := calgo.NewRecorder()
		ex := calgo.NewExchanger("E",
			calgo.ExchangerWithWaitPolicy(calgo.NoWait{}),
			calgo.ExchangerWithRecorder(rec),
		)
		tid := nextTid()
		for i := 0; i < b.N; i++ {
			ex.Exchange(tid, int64(i))
		}
	})
}

// BenchmarkRecorderView measures view derivation (F̂ composition +
// projection) over a large recorded trace.
func BenchmarkRecorderView(b *testing.B) {
	rec := calgo.NewRecorder()
	es, err := calgo.NewElimStack("ES", calgo.ElimStackWithRecorder(rec), calgo.ElimStackWithWaitPolicy(calgo.SpinWait(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2_000; i++ {
		tid := calgo.ThreadID(rng.Intn(4) + 1)
		if rng.Intn(2) == 0 {
			_ = es.Push(tid, int64(i))
		} else {
			es.TryPop(tid, 1)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr := rec.View("ES"); len(tr) == 0 {
			b.Fatal("empty view")
		}
	}
}
