module calgo

go 1.22
