package calgo

import (
	"calgo/internal/chaos"
	"calgo/internal/objects/baseline"
	"calgo/internal/objects/dualqueue"
	"calgo/internal/objects/dualstack"
	"calgo/internal/objects/elimarray"
	"calgo/internal/objects/elimstack"
	"calgo/internal/objects/exchanger"
	"calgo/internal/objects/msqueue"
	"calgo/internal/objects/pqueue"
	"calgo/internal/objects/snapshot"
	"calgo/internal/objects/syncqueue"
	"calgo/internal/objects/treiber"
)

// Concurrent objects (§2): the exchanger of Figure 1, the elimination
// stack of Figure 2 with its central stack and elimination array, the
// synchronous queue client, and lock-based baselines for benchmarking.
type (
	// Exchanger is the wait-free exchanger CA-object (Figure 1).
	Exchanger = exchanger.Exchanger
	// WaitPolicy controls an offering thread's partner-wait window.
	WaitPolicy = exchanger.WaitPolicy
	// ElimArray is an array of exchangers behind a single-exchanger
	// interface (§2.2).
	ElimArray = elimarray.ElimArray
	// TreiberStack is the central lock-free stack of Figure 2; its Try
	// operations fail under contention, its Push/Pop retry.
	TreiberStack = treiber.Stack
	// ElimStack is the elimination stack of Hendler et al. (Figure 2).
	ElimStack = elimstack.Stack
	// SyncQueue is a synchronous hand-off queue ([9], [22]).
	SyncQueue = syncqueue.SyncQueue
	// LockStack is the coarse-grained stack baseline.
	LockStack = baseline.LockStack
	// LockExchanger is the coarse-grained exchanger baseline.
	LockExchanger = baseline.LockExchanger
	// LockQueue is the coarse-grained queue baseline.
	LockQueue = baseline.LockQueue
	// DualQueue is a lock-free dual FIFO queue (Scherer & Scott): deqs
	// wait for values, and an enq fulfilling the oldest waiting deq forms
	// one CA-element.
	DualQueue = dualqueue.Queue
	// DualStack is a lock-free dual stack (Scherer & Scott, §6): pops
	// wait for values, and a push fulfilling a waiting pop forms one
	// CA-element.
	DualStack = dualstack.Stack
	// MSQueue is the Michael-Scott lock-free FIFO queue, a classically
	// linearizable substrate.
	MSQueue = msqueue.Queue
	// PQueueHeap is the mutex-guarded binary min-heap, the priority-queue
	// substrate behind the specialized-monitor benchmarks.
	PQueueHeap = pqueue.Heap
	// ImmediateSnapshot is the one-shot immediate atomic snapshot object
	// of Borowsky and Gafni (Neiger's set-linearizability example, §6).
	ImmediateSnapshot = snapshot.Snapshot
	// SnapshotView is the view returned by an immediate snapshot update.
	SnapshotView = snapshot.View
	// SnapshotPair is one (thread, value) entry of a view.
	SnapshotPair = snapshot.Pair
	// SnapshotResult pairs a completed update with its view, for
	// DeriveSnapshotTrace.
	SnapshotResult = snapshot.Result
)

// Wait policies for exchanger-based objects.
type (
	// SleepWait waits by sleeping, as in java.util.concurrent.
	SleepWait = exchanger.Sleep
	// SpinWait waits by yielding the processor repeatedly.
	SpinWait = exchanger.Spin
	// NoWait withdraws immediately.
	NoWait = exchanger.NoWait
	// FuncWait adapts a function to a WaitPolicy (tests).
	FuncWait = exchanger.Func
)

// Constructors and options.
var (
	// NewExchanger returns a wait-free exchanger.
	NewExchanger = exchanger.New
	// ExchangerWithWaitPolicy sets the exchanger's wait policy.
	ExchangerWithWaitPolicy = exchanger.WithWaitPolicy
	// ExchangerWithRecorder instruments the exchanger.
	ExchangerWithRecorder = exchanger.WithRecorder

	// NewElimArray returns a K-slot elimination array.
	NewElimArray = elimarray.New
	// ElimArrayWithWaitPolicy sets the slots' wait policy.
	ElimArrayWithWaitPolicy = elimarray.WithWaitPolicy
	// ElimArrayWithRecorder instruments the array's exchangers.
	ElimArrayWithRecorder = elimarray.WithRecorder
	// ElimArrayWithSlotter overrides slot selection.
	ElimArrayWithSlotter = elimarray.WithSlotter

	// NewTreiberStack returns the central lock-free stack.
	NewTreiberStack = treiber.New
	// TreiberWithRecorder instruments the stack.
	TreiberWithRecorder = treiber.WithRecorder

	// NewElimStack returns an elimination stack.
	NewElimStack = elimstack.New
	// ElimStackWithSlots sets the elimination array width K.
	ElimStackWithSlots = elimstack.WithSlots
	// ElimStackWithWaitPolicy sets the exchangers' wait policy.
	ElimStackWithWaitPolicy = elimstack.WithWaitPolicy
	// ElimStackWithRecorder instruments the stack and its subobjects and
	// registers the view functions F_AR and F_ES.
	ElimStackWithRecorder = elimstack.WithRecorder

	// NewSyncQueue returns a synchronous queue.
	NewSyncQueue = syncqueue.New
	// SyncQueueWithWaitPolicy sets the partner-wait policy.
	SyncQueueWithWaitPolicy = syncqueue.WithWaitPolicy
	// SyncQueueWithRecorder instruments the queue.
	SyncQueueWithRecorder = syncqueue.WithRecorder

	// NewLockStack returns the lock-based stack baseline.
	NewLockStack = baseline.NewLockStack
	// NewLockExchanger returns the lock-based exchanger baseline.
	NewLockExchanger = baseline.NewLockExchanger
	// NewLockQueue returns the lock-based queue baseline.
	NewLockQueue = baseline.NewLockQueue

	// NewDualQueue returns a dual queue.
	NewDualQueue = dualqueue.New
	// DualQueueWithRecorder instruments the dual queue.
	DualQueueWithRecorder = dualqueue.WithRecorder
	// DualQueueWithWaitPolicy sets the waiting dequeuers' spin policy.
	DualQueueWithWaitPolicy = dualqueue.WithWaitPolicy

	// NewDualStack returns a dual stack.
	NewDualStack = dualstack.New
	// DualStackWithRecorder instruments the dual stack.
	DualStackWithRecorder = dualstack.WithRecorder
	// DualStackWithWaitPolicy sets the waiting poppers' spin policy.
	DualStackWithWaitPolicy = dualstack.WithWaitPolicy

	// NewMSQueue returns a Michael-Scott queue.
	NewMSQueue = msqueue.New
	// MSQueueWithRecorder instruments the queue.
	MSQueueWithRecorder = msqueue.WithRecorder

	// NewPQueueHeap returns a mutex-guarded binary min-heap.
	NewPQueueHeap = pqueue.New
	// PQueueHeapWithRecorder instruments the heap.
	PQueueHeapWithRecorder = pqueue.WithRecorder

	// NewImmediateSnapshot returns a one-shot immediate snapshot object
	// for n participants.
	NewImmediateSnapshot = snapshot.New
	// DeriveSnapshotTrace computes the CA-trace of a quiescent immediate
	// snapshot run from its completed operations.
	DeriveSnapshotTrace = snapshot.DeriveTrace
)

// Fault injection (chaos testing): seeded, policy-driven delays, stalls,
// biased scheduling and forced CAS retries at the objects' labeled
// synchronization points. See calgo/internal/chaos for the soundness
// argument (chaos changes timing, never semantics).
type (
	// ChaosInjector delivers policy-driven faults; a nil injector injects
	// nothing.
	ChaosInjector = chaos.Injector
	// ChaosPolicy decides what happens at each injection point.
	ChaosPolicy = chaos.Policy
	// ChaosSite labels an injection point ("treiber.push.pre-cas").
	ChaosSite = chaos.Site
	// ChaosStats counts the faults an injector has delivered.
	ChaosStats = chaos.Stats
)

var (
	// NewChaosInjector returns an injector driving a policy from a seed.
	NewChaosInjector = chaos.NewInjector
	// ChaosPolicies returns the standard policy suite keyed by name.
	ChaosPolicies = chaos.Named
	// ChaosPolicyNames lists the standard suite in deterministic order.
	ChaosPolicyNames = chaos.PolicyNames

	// ExchangerWithChaos threads fault injection through an exchanger.
	ExchangerWithChaos = exchanger.WithChaos
	// ElimArrayWithChaos threads fault injection through an array's slots.
	ElimArrayWithChaos = elimarray.WithChaos
	// TreiberWithChaos threads fault injection through the central stack.
	TreiberWithChaos = treiber.WithChaos
	// ElimStackWithChaos threads fault injection through the stack and its
	// subobjects.
	ElimStackWithChaos = elimstack.WithChaos
	// SyncQueueWithChaos threads fault injection through the queue.
	SyncQueueWithChaos = syncqueue.WithChaos
	// MSQueueWithChaos threads fault injection through the queue.
	MSQueueWithChaos = msqueue.WithChaos
	// PQueueHeapWithChaos stretches the heap's operation windows.
	PQueueHeapWithChaos = pqueue.WithChaos
	// DualQueueWithChaos threads fault injection through the dual queue.
	DualQueueWithChaos = dualqueue.WithChaos
	// DualStackWithChaos threads fault injection through the dual stack.
	DualStackWithChaos = dualstack.WithChaos
	// SnapshotWithChaos threads timing faults through the snapshot's
	// level descent.
	SnapshotWithChaos = snapshot.WithChaos
)

// PopSentinel is the reserved value popping threads offer to the
// elimination array; elimination-stack clients must not push it.
const PopSentinel = elimstack.PopSentinel

// Method names used in histories and traces.
const (
	MethodExchange = "exchange"
	MethodPush     = "push"
	MethodPop      = "pop"
	MethodPut      = "put"
	MethodTake     = "take"
	MethodEnq      = "enq"
	MethodDeq      = "deq"
	MethodRead     = "read"
	MethodWrite    = "write"
	MethodUpdate   = "update"

	MethodInsert     = "insert"
	MethodExtractMin = "extractmin"
)
