package calgo_test

import (
	"strings"
	"testing"

	"calgo"
)

// TestNewStreamEndToEnd drives the facade streaming API: a queue defect
// is reported at its exact event index, with the stream metrics visible
// through the shared registry.
func TestNewStreamEndToEnd(t *testing.T) {
	m := calgo.NewMetrics()
	s, err := calgo.NewStream(calgo.NewQueueSpec("q"),
		calgo.WithStreamWindow(128),
		calgo.WithStreamCheckEvery(16),
		calgo.WithMetrics(m),
		calgo.WithMaxStates(100_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	h := calgo.History{
		calgo.Inv(1, "q", "enq", calgo.Int(1)),
		calgo.Res(1, "q", "enq", calgo.Bool(true)),
		calgo.Inv(2, "q", "deq", calgo.Unit()),
		calgo.Res(2, "q", "deq", calgo.Pair(true, 7)), // event 3: 7 was never enqueued
	}
	for _, ev := range h {
		if err := s.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	v := s.Close()
	if v.Status != calgo.StreamViolation || v.AtEvent != 3 {
		t.Fatalf("want VIOLATION-at-event-3, got %s", v)
	}
	if err := s.Feed(h[0]); err != calgo.ErrStreamClosed {
		t.Fatalf("Feed after Close: %v, want ErrStreamClosed", err)
	}
	if got := m.Counter("stream.events").Value(); got != 4 {
		t.Fatalf("stream.events = %d, want 4", got)
	}
	if got := m.Counter("stream.violations").Value(); got != 1 {
		t.Fatalf("stream.violations = %d, want 1", got)
	}
}

// TestNewStreamRejectsForeignOptions pins the facade contract: options
// that do not apply to streams fail construction instead of being
// silently dropped, and batch engine selection is redirected to
// WithStreamEngine.
func TestNewStreamRejectsForeignOptions(t *testing.T) {
	if _, err := calgo.NewStream(calgo.NewQueueSpec("q"), calgo.WithInvariant(nil)); err == nil ||
		!strings.Contains(err.Error(), "WithInvariant") {
		t.Fatalf("explorer option accepted by NewStream: %v", err)
	}
	if _, err := calgo.NewStream(calgo.NewQueueSpec("q"), calgo.WithEngine(calgo.EngineAuto)); err == nil ||
		!strings.Contains(err.Error(), "WithStreamEngine") {
		t.Fatalf("WithEngine should redirect to WithStreamEngine: %v", err)
	}
}

// TestNewStreamEngineSelection: forcing the monitor engine on a spec
// without one fails fast; ParseStreamEngine round-trips the spellings.
func TestNewStreamEngineSelection(t *testing.T) {
	_, err := calgo.NewStream(calgo.NewExchangerSpec("ex"),
		calgo.WithStreamEngine(calgo.StreamEngineMonitor))
	if err == nil {
		t.Fatal("engine monitor on the exchanger (elements of size 2) must fail")
	}
	for _, e := range []calgo.StreamEngine{calgo.StreamEngineAuto, calgo.StreamEngineDFS, calgo.StreamEngineMonitor} {
		got, err := calgo.ParseStreamEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseStreamEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
}
