package calgo_test

import (
	"context"
	"fmt"

	"calgo"
)

// ExampleCAL checks the paper's Figure 3 history H1 against the exchanger
// CA-specification: the swap is explainable concurrency-aware but not
// sequentially.
func ExampleCAL() {
	h, _ := calgo.ParseHistory(`
inv t1 E.exchange 3
inv t2 E.exchange 4
inv t3 E.exchange 7
res t1 E.exchange (true,4)
res t2 E.exchange (true,3)
res t3 E.exchange (false,7)
`)
	spec := calgo.NewExchangerSpec("E")
	cal, _ := calgo.CAL(context.Background(), h, spec)
	lin, _ := calgo.Linearizable(context.Background(), h, spec)
	fmt.Println("CA-linearizable:", cal.OK)
	fmt.Println("linearizable:   ", lin.OK)
	fmt.Println("witness:", cal.Witness)
	// Output:
	// CA-linearizable: true
	// linearizable:    false
	// witness: E.{(t1, exchange(3) ▷ (true,4)), (t2, exchange(4) ▷ (true,3))} · E.{(t3, exchange(7) ▷ (false,7))}
}

// ExampleAgrees decides the agreement relation H ⊑CAL T (Definition 5)
// directly, without a specification.
func ExampleAgrees() {
	h, _ := calgo.ParseHistory(`
inv t1 E.exchange 3
inv t2 E.exchange 4
res t1 E.exchange (true,4)
res t2 E.exchange (true,3)
`)
	swap, _ := calgo.NewElement(
		calgo.Operation{Thread: 1, Object: "E", Method: "exchange", Arg: calgo.Int(3), Ret: calgo.Pair(true, 4)},
		calgo.Operation{Thread: 2, Object: "E", Method: "exchange", Arg: calgo.Int(4), Ret: calgo.Pair(true, 3)},
	)
	fmt.Println("agrees:", calgo.Agrees(h, calgo.Trace{swap}) == nil)
	// Output:
	// agrees: true
}

// ExampleRecorder shows the auxiliary trace 𝒯 with a view function F_o: a
// parent object translates its subobject's CA-elements into its own.
func ExampleRecorder() {
	rec := calgo.NewRecorder()
	// "outer" owns "inner" and relabels inner's elements as its own.
	rec.Register("outer", []calgo.ObjectID{"inner"}, func(el calgo.Element) (calgo.Trace, bool) {
		ops := make([]calgo.Operation, len(el.Ops))
		for i, op := range el.Ops {
			op.Object = "outer"
			ops[i] = op
		}
		out, err := calgo.NewElement(ops...)
		if err != nil {
			return nil, false
		}
		return calgo.Trace{out}, true
	})
	rec.Append(calgo.Singleton(calgo.Operation{
		Thread: 1, Object: "inner", Method: "exchange",
		Arg: calgo.Int(5), Ret: calgo.Pair(false, 5),
	}))
	fmt.Println(rec.View("outer"))
	// Output:
	// outer.{(t1, exchange(5) ▷ (false,5))}
}

// ExampleElimStack pushes and pops through the elimination stack's
// public API.
func ExampleElimStack() {
	es, _ := calgo.NewElimStack("ES", calgo.ElimStackWithSlots(2))
	_ = es.Push(1, 42)
	fmt.Println(es.Pop(1))
	// Output:
	// 42
}
