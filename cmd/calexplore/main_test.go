package main

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"reflect"
	"testing"
	"time"

	"calgo"
	"calgo/internal/model"
)

// testOpts is the base option set the explore* helpers expect from run().
func testOpts(maxStates, parallel int) []calgo.Option {
	return []calgo.Option{calgo.WithMaxStates(maxStates), calgo.WithParallelism(parallel)}
}

// testLogger discards the diagnostics mainExit logs.
func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestParsePrograms(t *testing.T) {
	got, err := parsePrograms("push:1 pop,push:2")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]model.StackOp{
		{model.Push(1), model.Pop()},
		{model.Push(2)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsePrograms = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "push:x", "peek", "push:1,,pop", "push:"} {
		if _, err := parsePrograms(bad); err == nil {
			t.Errorf("parsePrograms(%q) should fail", bad)
		}
	}
}

func TestParseSQPrograms(t *testing.T) {
	got, err := parseSQPrograms("put:5 take,take")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]model.SQOp{
		{model.Put(5), model.Take()},
		{model.Take()},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseSQPrograms = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "put:x", "poll", "take,,take"} {
		if _, err := parseSQPrograms(bad); err == nil {
			t.Errorf("parseSQPrograms(%q) should fail", bad)
		}
	}
}

func TestParseDQPrograms(t *testing.T) {
	got, err := parseDQPrograms("enq:5 deq,deq")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]model.QOp{
		{model.Enq(5), model.Deq()},
		{model.Deq()},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseDQPrograms = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "enq:x", "peek", "deq,,deq"} {
		if _, err := parseDQPrograms(bad); err == nil {
			t.Errorf("parseDQPrograms(%q) should fail", bad)
		}
	}
}

func TestParseValues(t *testing.T) {
	got, err := parseValues("1, 2,3")
	if err != nil || !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Errorf("parseValues = %v, %v", got, err)
	}
	if _, err := parseValues("1,x"); err == nil {
		t.Error("bad values should fail")
	}
}

func TestExploreNewTargetsEndToEnd(t *testing.T) {
	ctx := context.Background()
	progs, _ := parsePrograms("push:1,pop")
	if err := exploreDualStack(ctx, progs, 1, testOpts(1_000_000, 2)); err != nil {
		t.Errorf("dualstack: %v", err)
	}
	dq, _ := parseDQPrograms("enq:1,deq")
	if err := exploreDualQueue(ctx, dq, 1, testOpts(1_000_000, 2)); err != nil {
		t.Errorf("dualqueue: %v", err)
	}
	if err := exploreSnapshot(ctx, []int64{1, 2}, testOpts(1_000_000, 2)); err != nil {
		t.Errorf("snapshot: %v", err)
	}
}

func TestExploreTargetsEndToEnd(t *testing.T) {
	ctx := context.Background()
	if err := exploreExchanger(ctx, "1,2", testOpts(1_000_000, 2)); err != nil {
		t.Errorf("exchanger: %v", err)
	}
	if err := exploreExchanger(ctx, "x", testOpts(10, 1)); err == nil {
		t.Error("bad values should fail")
	}
	progs, _ := parsePrograms("push:1,pop")
	if err := exploreStack(ctx, progs, testOpts(1_000_000, 2)); err != nil {
		t.Errorf("stack: %v", err)
	}
	if err := exploreElimStack(ctx, progs, 1, 1, testOpts(1_000_000, 2)); err != nil {
		t.Errorf("elimstack: %v", err)
	}
	sq, _ := parseSQPrograms("put:1,take")
	if err := exploreSyncQueue(ctx, sq, testOpts(1_000_000, 2)); err != nil {
		t.Errorf("syncqueue: %v", err)
	}
}

func TestExploreDeadlineMapsToUnknownExit(t *testing.T) {
	// An immediately-expired deadline interrupts the exploration; the
	// exit-code mapping must classify that as UNKNOWN (3), not violation.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	err := exploreExchanger(ctx, "1,2,3,4", testOpts(10_000_000, 0))
	if !errors.Is(err, calgo.ErrExploreInterrupted) {
		t.Fatalf("err = %v, want ErrExploreInterrupted", err)
	}
	if got := mainExit(err, testLogger()); got != 3 {
		t.Errorf("mainExit = %d, want 3", got)
	}
}

func TestMainExitCodes(t *testing.T) {
	if got := mainExit(nil, testLogger()); got != 0 {
		t.Errorf("mainExit(nil, testLogger()) = %d, want 0", got)
	}
	if got := mainExit(calgo.ErrExploreMaxStates, testLogger()); got != 3 {
		t.Errorf("mainExit(ErrMaxStates) = %d, want 3", got)
	}
	verr := &calgo.ExploreViolation{Kind: "terminal", Err: errors.New("boom")}
	if got := mainExit(verr, testLogger()); got != 1 {
		t.Errorf("mainExit(violation) = %d, want 1", got)
	}
	if got := mainExit(errors.New("bad flag"), testLogger()); got != 2 {
		t.Errorf("mainExit(usage) = %d, want 2", got)
	}
}
