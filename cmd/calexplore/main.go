// Command calexplore runs the bounded model checker over one of the
// paper's algorithms, discharging the §5 proof obligations on every
// interleaving of a configurable client program.
//
// Usage:
//
//	calexplore -target exchanger -values 3,4,7
//	calexplore -target stack -program "push:1 pop,push:2 pop"
//	calexplore -target elimstack -program "push:1,push:2,pop" -slots 1 -retries 2
//
// For -target exchanger, each comma-separated value is one thread
// performing a single exchange. For the stacks, -program is a
// comma-separated list of threads, each a space-separated list of push:V
// and pop operations.
//
// The exploration is resource-bounded: -timeout imposes a wall-clock
// deadline and -max-states bounds the search; interrupts (SIGINT/SIGTERM)
// stop the exploration cooperatively. A bounded or interrupted run reports
// UNKNOWN with partial statistics and exits 3; a genuine violation exits 1;
// usage errors exit 2.
//
// Observability: -metrics-json writes the exploration counters as JSON
// when done, -trace streams sampled events and dumps a flight-recorder
// ring on VIOLATION/UNKNOWN, -progress prints live status lines, -pprof
// serves net/http/pprof, and -serve exposes the live ops endpoint
// (/metrics Prometheus exposition, /statusz live run status with
// ?watch=1 streaming, /flightz, /runsz). Diagnostics are structured log
// lines shaped by -log-level and -log-format. Run with -h for the
// exit-code legend.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"calgo"
	"calgo/internal/cliflags"
	"calgo/internal/model"
	"calgo/internal/rg"
	"calgo/internal/spec"
)

func main() {
	os.Exit(run())
}

// mainExit maps exploration outcomes to the exit-code convention: 0
// verified, 1 violation, 2 usage error, 3 undecided (budget or deadline).
func mainExit(err error, logger *slog.Logger) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, calgo.ErrExploreInterrupted) || errors.Is(err, calgo.ErrExploreMaxStates):
		fmt.Printf("UNKNOWN: exploration stopped before covering every interleaving: %v\n", err)
		return 3
	default:
		var verr *calgo.ExploreViolation
		if errors.As(err, &verr) {
			logger.Error("violation found", "err", err)
			return 1
		}
		logger.Error("exploration failed", "err", err)
		return 2
	}
}

func run() int {
	var (
		target    = flag.String("target", "exchanger", "model: exchanger, stack, elimstack, syncqueue, dualstack, dualqueue, snapshot")
		values    = flag.String("values", "3,4,7", "exchanger: one exchange value per thread")
		program   = flag.String("program", "push:1,pop", "stacks: comma-separated threads of push:V/pop ops")
		sqProgram = flag.String("sq-program", "put:1,take", "syncqueue: comma-separated threads of put:V/take ops")
		dqProgram = flag.String("dq-program", "enq:1,deq", "dualqueue: comma-separated threads of enq:V/deq ops")
		slots     = flag.Int("slots", 1, "elimstack: elimination array width K")
		retries   = flag.Int("retries", 2, "elimstack: retry rounds before a thread halts")
		maxStates = flag.Int("max-states", 4_000_000, "state budget")
	)
	shared := cliflags.Register("calexplore")
	flag.Parse()

	if err := shared.Start(); err != nil {
		shared.Logger().Error("startup failed", "err", err)
		return 2
	}
	defer shared.Close()

	sigCtx, stop := cliflags.SignalContext()
	defer stop()
	ctx, cancel := shared.WithTimeout(sigCtx)
	defer cancel()

	base := append(shared.Options(), calgo.WithMaxStates(*maxStates))

	exploreErr := explore(ctx, *target, flags{
		values:    *values,
		program:   *program,
		sqProgram: *sqProgram,
		dqProgram: *dqProgram,
		slots:     *slots,
		retries:   *retries,
	}, base)
	exit := mainExit(exploreErr, shared.Logger())

	// A violation carries the typed schedule that reached it; render it
	// everywhere evidence goes: the flight dump, -explain, -dot, -report.
	var schedule []calgo.ExploreStep
	var verr *calgo.ExploreViolation
	if errors.As(exploreErr, &verr) {
		schedule = verr.Schedule
	}
	if exit == 1 || exit == 3 {
		shared.DumpFlight(schedule...)
	}
	if len(schedule) > 0 {
		if shared.Explain() {
			fmt.Print(calgo.RenderScheduleTimeline(schedule))
		}
		if err := shared.WriteDOT(calgo.RenderScheduleDOT(schedule)); err != nil {
			// Still flush -metrics-json/-report: every exit path after Start
			// produces the requested artifacts.
			shared.Logger().Error("writing DOT", "err", err)
			if ferr := shared.Finish(2); ferr != nil {
				shared.Logger().Error("flushing outputs", "err", ferr)
			}
			return 2
		}
	}
	if shared.WantsRuns() {
		run := calgo.RunReport{Name: *target, Verdict: exitVerdict(exit), Schedule: schedule}
		if exploreErr != nil {
			run.Detail = exploreErr.Error()
		}
		if len(schedule) > 0 {
			run.Timeline = calgo.RenderScheduleTimeline(schedule)
			run.DOT = calgo.RenderScheduleDOT(schedule)
		}
		shared.AddRun(run)
	}
	if err := shared.Finish(exit); err != nil {
		shared.Logger().Error("flushing outputs", "err", err)
		return 2
	}
	return exit
}

// exitVerdict maps an exit code to the report verdict vocabulary.
func exitVerdict(exit int) string {
	switch exit {
	case 0:
		return "OK"
	case 1:
		return "VIOLATION"
	case 3:
		return "UNKNOWN"
	}
	return "ERROR"
}

// flags carries the target-specific knobs into the per-target explorers.
type flags struct {
	values, program, sqProgram, dqProgram string
	slots, retries                        int
}

func explore(ctx context.Context, target string, f flags, base []calgo.Option) error {
	switch target {
	case "exchanger":
		return exploreExchanger(ctx, f.values, base)
	case "stack":
		progs, err := parsePrograms(f.program)
		if err != nil {
			return err
		}
		return exploreStack(ctx, progs, base)
	case "elimstack":
		progs, err := parsePrograms(f.program)
		if err != nil {
			return err
		}
		return exploreElimStack(ctx, progs, f.slots, f.retries, base)
	case "syncqueue":
		progs, err := parseSQPrograms(f.sqProgram)
		if err != nil {
			return err
		}
		return exploreSyncQueue(ctx, progs, base)
	case "dualstack":
		progs, err := parsePrograms(f.program)
		if err != nil {
			return err
		}
		return exploreDualStack(ctx, progs, f.retries, base)
	case "dualqueue":
		progs, err := parseDQPrograms(f.dqProgram)
		if err != nil {
			return err
		}
		return exploreDualQueue(ctx, progs, f.retries, base)
	case "snapshot":
		vals, err := parseValues(f.values)
		if err != nil {
			return err
		}
		return exploreSnapshot(ctx, vals, base)
	default:
		return fmt.Errorf("unknown target %q", target)
	}
}

func parseValues(values string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(values, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func exploreExchanger(ctx context.Context, values string, base []calgo.Option) error {
	vals, err := parseValues(values)
	if err != nil {
		return err
	}
	programs := make([][]int64, len(vals))
	for i, v := range vals {
		programs[i] = []int64{v}
	}
	init := model.NewExchanger(model.ExchangerConfig{Programs: programs})
	fmt.Printf("exploring exchanger: %d threads, checking proof outline + J + rely/guarantee + CAL\n", len(programs))
	stats, err := calgo.Explore(ctx, init, append(base,
		calgo.WithInvariant(func(st calgo.ModelState) error {
			if err := model.InvariantJ(st); err != nil {
				return err
			}
			return model.ProofOutline(st)
		}),
		calgo.WithTransition(rg.Hook(true)),
		calgo.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, true)))...)
	report(stats, err)
	return err
}

func exploreStack(ctx context.Context, programs [][]model.StackOp, base []calgo.Option) error {
	init := model.NewStack(model.StackConfig{Programs: programs})
	fmt.Printf("exploring central stack: %d threads, checking linearizability of every execution\n", len(programs))
	stats, err := calgo.Explore(ctx, init, append(base,
		calgo.WithTerminal(model.VerifyCAL(spec.NewCentralStack("S"), nil, true)))...)
	report(stats, err)
	return err
}

func exploreElimStack(ctx context.Context, programs [][]model.StackOp, slots, retries int, base []calgo.Option) error {
	init := model.NewElimStack(model.ESConfig{
		Slots:    slots,
		Retries:  retries,
		Programs: programs,
	})
	fmt.Printf("exploring elimination stack: %d threads, K=%d, R=%d, checking linearizability via F_ES ∘ F̂_AR\n",
		len(programs), slots, retries)
	stats, err := calgo.Explore(ctx, init, append(base,
		calgo.WithTerminal(model.VerifyCAL(spec.NewStack("ES"), init.Project, true)),
		calgo.WithDeadlockAllowed())...)
	report(stats, err)
	return err
}

func report(stats calgo.ExploreStats, err error) {
	fmt.Printf("states=%d transitions=%d terminals=%d max-depth=%d steals=%d\n",
		stats.States, stats.Transitions, stats.Terminals, stats.MaxDepth, stats.Steals)
	if err == nil {
		fmt.Println("VERIFIED: all obligations hold on every interleaving")
	}
}

func exploreSyncQueue(ctx context.Context, programs [][]model.SQOp, base []calgo.Option) error {
	init := model.NewSyncQueue(model.SQConfig{Programs: programs})
	fmt.Printf("exploring synchronous queue: %d threads, checking CAL of every execution\n", len(programs))
	stats, err := calgo.Explore(ctx, init, append(base,
		calgo.WithTerminal(model.VerifyCAL(spec.NewSyncQueue("SQ"), nil, true)))...)
	report(stats, err)
	return err
}

func parseSQPrograms(src string) ([][]model.SQOp, error) {
	var programs [][]model.SQOp
	for _, threadSrc := range strings.Split(src, ",") {
		var prog []model.SQOp
		for _, opSrc := range strings.Fields(threadSrc) {
			switch {
			case opSrc == "take":
				prog = append(prog, model.Take())
			case strings.HasPrefix(opSrc, "put:"):
				v, err := strconv.ParseInt(opSrc[len("put:"):], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad op %q: %w", opSrc, err)
				}
				prog = append(prog, model.Put(v))
			default:
				return nil, fmt.Errorf("bad op %q, want put:V or take", opSrc)
			}
		}
		if len(prog) == 0 {
			return nil, fmt.Errorf("empty thread program in %q", src)
		}
		programs = append(programs, prog)
	}
	return programs, nil
}

func parsePrograms(src string) ([][]model.StackOp, error) {
	var programs [][]model.StackOp
	for _, threadSrc := range strings.Split(src, ",") {
		var prog []model.StackOp
		for _, opSrc := range strings.Fields(threadSrc) {
			switch {
			case opSrc == "pop":
				prog = append(prog, model.Pop())
			case strings.HasPrefix(opSrc, "push:"):
				v, err := strconv.ParseInt(opSrc[len("push:"):], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad op %q: %w", opSrc, err)
				}
				prog = append(prog, model.Push(v))
			default:
				return nil, fmt.Errorf("bad op %q, want push:V or pop", opSrc)
			}
		}
		if len(prog) == 0 {
			return nil, fmt.Errorf("empty thread program in %q", src)
		}
		programs = append(programs, prog)
	}
	return programs, nil
}

func exploreDualStack(ctx context.Context, programs [][]model.StackOp, retries int, base []calgo.Option) error {
	init := model.NewDualStack(model.DSConfig{Retries: retries, Programs: programs})
	fmt.Printf("exploring dual stack: %d threads, R=%d, checking CAL of every execution\n", len(programs), retries)
	stats, err := calgo.Explore(ctx, init, append(base,
		calgo.WithTerminal(model.VerifyCAL(spec.NewDualStack("DS"), nil, true)),
		calgo.WithDeadlockAllowed())...)
	report(stats, err)
	return err
}

func exploreDualQueue(ctx context.Context, programs [][]model.QOp, retries int, base []calgo.Option) error {
	init := model.NewDualQueue(model.DQConfig{Retries: retries, Programs: programs})
	fmt.Printf("exploring dual queue: %d threads, R=%d, checking CAL of every execution\n", len(programs), retries)
	stats, err := calgo.Explore(ctx, init, append(base,
		calgo.WithTerminal(model.VerifyCAL(spec.NewDualQueue("DQ"), nil, true)),
		calgo.WithDeadlockAllowed())...)
	report(stats, err)
	return err
}

func exploreSnapshot(ctx context.Context, values []int64, base []calgo.Option) error {
	init := model.NewSnapshot(model.ISConfig{Values: values})
	fmt.Printf("exploring immediate snapshot: %d participants, register-accurate scans\n", len(values))
	stats, err := calgo.Explore(ctx, init, append(base,
		calgo.WithTerminal(model.VerifyCAL(spec.NewSnapshot("IS", len(values)), init.Project, true)))...)
	report(stats, err)
	return err
}

func parseDQPrograms(src string) ([][]model.QOp, error) {
	var programs [][]model.QOp
	for _, threadSrc := range strings.Split(src, ",") {
		var prog []model.QOp
		for _, opSrc := range strings.Fields(threadSrc) {
			switch {
			case opSrc == "deq":
				prog = append(prog, model.Deq())
			case strings.HasPrefix(opSrc, "enq:"):
				v, err := strconv.ParseInt(opSrc[len("enq:"):], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad op %q: %w", opSrc, err)
				}
				prog = append(prog, model.Enq(v))
			default:
				return nil, fmt.Errorf("bad op %q, want enq:V or deq", opSrc)
			}
		}
		if len(prog) == 0 {
			return nil, fmt.Errorf("empty thread program in %q", src)
		}
		programs = append(programs, prog)
	}
	return programs, nil
}
