// Command calbench regenerates the performance tables of EXPERIMENTS.md:
// throughput sweeps over goroutine counts comparing the elimination stack
// against the retrying Treiber stack and a lock-based stack (the
// motivating claim of Hendler et al. [10]), the CAS exchanger against a
// lock-based exchanger and an unbuffered Go channel, the synchronous
// queue, and the elimination-array width ablation.
//
// Usage:
//
//	calbench                             # all tables, default settings
//	calbench -table stacks -dur 2s       # one table, longer runs
//	calbench -json BENCH_2026-08-06.json # also write machine-readable tables
//
// With -json the sweep tables are additionally written to the given
// path as a JSON document (see EXPERIMENTS.md for the schema), so the
// perf trajectory accumulates as BENCH_<date>.json files.
//
// With -compare the run's rates are diffed cell-by-cell against a
// committed baseline — a BENCH_*.json document, or a run-store
// directory whose newest bench record (by generation time) is used;
// -gate N turns a worse-than-N% regression in any comparable cell into
// exit 1, and -repeat M measures each table M times keeping each
// cell's best rate, so one noisy scheduler stall cannot fail the gate
// (min-of-N noise floor; see EXPERIMENTS.md).
// -auto DIR does the whole bookkeeping at once: it maintains a
// run-history store in DIR (ingesting committed BENCH_*.json files on
// first open), compares against the newest trajectory point by
// generation timestamp, writes this run's tables as
// DIR/BENCH_<date>.json and records them as a new store record —
// queryable later via `calreport -store DIR -query regressions` or a
// serving daemon's /queryz. -auto also accepts a daemon URL
// (http://host:port): the baseline is fetched from and this run's
// tables are recorded to that daemon's store over calgo.storeapi/v1;
// no local BENCH file is written unless -json names one.
//
// The shared observability flags apply to the benchmark process itself:
// -timeout hard-caps the whole run (an expired run prints UNKNOWN and
// exits 3 with whatever tables completed), -metrics-json writes a
// summary of the sweeps (tables, cells, peak rates, memstats) and -pprof
// serves net/http/pprof for profiling the contended structures. -workers,
// -trace and -progress have no effect here: the sweeps size themselves
// from -max-goroutines and run no checker search. Run with -h for the
// exit-code legend.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"calgo/internal/cliflags"
	"calgo/internal/monitor"
	"calgo/internal/runstore"

	"calgo"
)

func main() {
	os.Exit(run())
}

var (
	duration = flag.Duration("dur", 500*time.Millisecond, "measurement window per cell")
	table    = flag.String("table", "all", "table to print: stacks, exchangers, syncqueue, queues, duals, elimk, monitor, all")
	maxG     = flag.Int("max-goroutines", 2*runtime.GOMAXPROCS(0), "largest goroutine count in sweeps")
	spin     = flag.Int("spin", 1, "exchanger partner-wait spin iterations (1 is best on few cores; raise on large machines)")
	jsonPath = flag.String("json", "", "also write the sweep tables as JSON to this path (e.g. BENCH_<date>.json)")
	compare  = flag.String("compare", "", "compare this run's rates against a baseline BENCH_*.json and print per-cell deltas")
	auto     = flag.String("auto", "", "accumulate the perf trajectory in this run store — a directory or a daemon URL (http://host:port): compare against the newest trajectory point there (unless -compare is set) and record this run's tables (plus BENCH_<date>.json in a directory, unless -json is set)")
	gate     = flag.Float64("gate", 0, "with -compare: exit 1 when any cell regresses by more than this percentage (0 = warn only)")
	repeat   = flag.Int("repeat", 1, "measure every table this many times and keep each cell's best rate — the min-of-N noise floor that keeps -compare from flagging scheduler noise as regression")
)

// The printed tables in machine-readable form are the runstore bench
// document (schema documented in EXPERIMENTS.md), so a run can land in
// the run-history store and be queried back without translation.
type (
	jsonReport = runstore.Bench
	jsonTable  = runstore.BenchTable
	jsonRow    = runstore.BenchRow
)

var (
	report jsonReport
	// reportMu orders recordTable in the sweep goroutine against the
	// -timeout path reading partial tables from main.
	reportMu sync.Mutex
)

// recordTable appends one sweep table to the JSON report. The table ID
// is the "B<n>" prefix of the printed title. Under -repeat a table is
// recorded once per round; later rounds merge cell-wise, keeping each
// cell's best rate (max ops/sec = the least-interfered measurement, so
// N repeats form a noise floor under which -compare deltas are taken).
func recordTable(title, colLabel string, cols []int, rows map[string][]float64, order []string) {
	id, _, _ := strings.Cut(title, ":")
	tbl := jsonTable{ID: id, Title: title, ColumnLabel: colLabel, Columns: cols}
	for _, name := range order {
		tbl.Rows = append(tbl.Rows, jsonRow{Name: name, OpsPerSec: rows[name]})
	}
	reportMu.Lock()
	defer reportMu.Unlock()
	for i := range report.Tables {
		if report.Tables[i].ID == tbl.ID {
			mergeMax(&report.Tables[i], tbl)
			return
		}
	}
	report.Tables = append(report.Tables, tbl)
}

// mergeMax folds src into dst cell-wise, keeping the larger rate.
func mergeMax(dst *jsonTable, src jsonTable) {
	for _, srow := range src.Rows {
		for j := range dst.Rows {
			if dst.Rows[j].Name != srow.Name {
				continue
			}
			for k := range dst.Rows[j].OpsPerSec {
				if k < len(srow.OpsPerSec) && srow.OpsPerSec[k] > dst.Rows[j].OpsPerSec[k] {
					dst.Rows[j].OpsPerSec[k] = srow.OpsPerSec[k]
				}
			}
		}
	}
}

// snapshotTables copies the tables recorded so far.
func snapshotTables() []jsonTable {
	reportMu.Lock()
	defer reportMu.Unlock()
	return append([]jsonTable(nil), report.Tables...)
}

// snapshotReport copies the whole document (as stamped by writeJSON).
func snapshotReport() jsonReport {
	reportMu.Lock()
	defer reportMu.Unlock()
	doc := report
	doc.Tables = append([]jsonTable(nil), report.Tables...)
	return doc
}

func writeJSON(path string) error {
	reportMu.Lock()
	report.GOMAXPROCS = runtime.GOMAXPROCS(0)
	report.Window = duration.String()
	report.Generated = time.Now().UTC().Format(time.RFC3339)
	b, err := json.MarshalIndent(report, "", "  ")
	reportMu.Unlock()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func run() int {
	shared := cliflags.Register("calbench")
	flag.Parse()

	if err := shared.Start(); err != nil {
		shared.Logger().Error("startup failed", "err", err)
		return 2
	}
	defer shared.Close()

	// fail is the post-Start usage/environment exit: it still flushes
	// -metrics-json and -report, so every exit path after Start produces
	// the requested artifacts.
	fail := func(msg string, err error) int {
		shared.Logger().Error(msg, "err", err)
		if ferr := shared.Finish(2); ferr != nil {
			shared.Logger().Error("flushing outputs", "err", ferr)
		}
		return 2
	}

	if *auto != "" {
		if err := resolveAuto(shared); err != nil {
			return fail("resolving -auto", err)
		}
	}

	sigCtx, stop := cliflags.SignalContext()
	defer stop()

	exit := 0
	done := make(chan error, 1)
	go func() { done <- runTables() }()
	var expired <-chan time.Time
	if shared.Timeout() > 0 {
		t := time.NewTimer(shared.Timeout())
		defer t.Stop()
		expired = t.C
	}
	select {
	case err := <-done:
		if err != nil {
			return fail("benchmark failed", err)
		}
	case <-expired:
		// The sweep goroutines keep spinning until the process exits; the
		// tables printed so far are the partial answer.
		fmt.Printf("UNKNOWN: -timeout %v expired after %d of the requested tables\n",
			shared.Timeout(), len(snapshotTables()))
		exit = 3
	case <-sigCtx.Done():
		fmt.Printf("UNKNOWN: interrupted after %d of the requested tables\n", len(snapshotTables()))
		exit = 3
	}
	if exit == 3 && *jsonPath != "" {
		// A cut-short run still flushes its partial tables so the -json/-auto
		// perf trajectory accumulates whatever evidence the run produced.
		if err := writeJSON(*jsonPath); err != nil {
			shared.Logger().Error("writing partial tables", "path", *jsonPath, "err", err)
		} else {
			fmt.Printf("wrote %d partial tables to %s\n", len(snapshotTables()), *jsonPath)
		}
	}

	if exit == 0 && (*compare != "" || autoBase != nil) {
		label, base := autoBaseLabel, autoBase
		if *compare != "" {
			var err error
			if label, base, err = loadBaseline(*compare); err != nil {
				return fail("loading baseline", err)
			}
		}
		worst, err := compareBaseline(label, base, snapshotTables())
		if err != nil {
			return fail("comparing baseline", err)
		}
		if *gate > 0 && worst.pct > *gate {
			fmt.Printf("REGRESSION: %s is %.1f%% below baseline, gate is %.0f%%\n", worst.cell, worst.pct, *gate)
			exit = 1
		}
	}

	// -auto: record this run's tables as a new trajectory point (a
	// store-assigned ID, so several same-day runs stay distinct even
	// though they share BENCH_<date>.json).
	if autoStore != nil {
		if doc := snapshotReport(); len(doc.Tables) > 0 {
			if doc.Generated == "" {
				// No -json write stamped the document (remote -auto writes
				// no local file); stamp it here so the record is queryable.
				doc.GOMAXPROCS = runtime.GOMAXPROCS(0)
				doc.Window = duration.String()
				doc.Generated = time.Now().UTC().Format(time.RFC3339)
			}
			rec := runstore.BenchRecord("", &doc)
			if err := autoStore.Put(rec); err != nil {
				shared.Logger().Error("recording trajectory point", "err", err)
			} else {
				fmt.Printf("recorded trajectory point %s in run store %s\n", rec.ID, *auto)
			}
		}
		if err := autoStore.Close(); err != nil {
			shared.Logger().Error("closing run store", "err", err)
		}
	}

	if m := shared.Metrics(); m != nil {
		tables := snapshotTables()
		m.Counter("bench.tables").Add(int64(len(tables)))
		for _, tbl := range tables {
			for _, row := range tbl.Rows {
				m.Counter("bench.cells").Add(int64(len(row.OpsPerSec)))
				g := m.Gauge("bench.peak_ops_per_sec." + tbl.ID)
				for _, v := range row.OpsPerSec {
					g.SetMax(int64(v))
				}
			}
		}
	}
	if err := shared.Finish(exit); err != nil {
		shared.Logger().Error("flushing outputs", "err", err)
		return 2
	}
	return exit
}

// The -auto run-history plumbing: the store behind the -auto spec (an
// FS store whose segments live beside the BENCH_*.json files, or a
// Remote client when -auto is a daemon URL) and the baseline bench
// document chosen from it.
var (
	autoStore     runstore.Store
	autoBase      *jsonReport
	autoBaseLabel string
)

// resolveAuto opens the run-history store behind -auto. A directory
// additionally ingests any committed BENCH_*.json files not yet
// recorded (idempotent: deterministic per-file IDs) and lands this
// run's tables in BENCH_<today>.json (unless -json is set); a daemon
// URL talks calgo.storeapi/v1 and writes no local file. Either way the
// newest bench record *by generation timestamp* becomes the comparison
// baseline — not the lexically newest filename, which stops being date
// order the moment a file name doesn't embed one — and the run's
// tables are recorded in the store afterwards. Explicit -compare/-json
// win.
func resolveAuto(shared *cliflags.Set) error {
	if runstore.IsStoreURL(*auto) {
		st, err := runstore.OpenRemote(*auto, runstore.RemoteOptions{})
		if err != nil {
			return err
		}
		autoStore = st
	} else {
		st, err := runstore.OpenFS(*auto, runstore.FSOptions{Metrics: shared.Metrics(), Logger: shared.Logger()})
		if err != nil {
			return err
		}
		autoStore = st
		if n, err := runstore.IngestBenchDir(st, *auto, shared.Logger()); err != nil {
			return err
		} else if n > 0 {
			shared.Logger().Info("ingested committed trajectory files", "dir", *auto, "files", n)
		}
		if *jsonPath == "" {
			*jsonPath = filepath.Join(*auto, "BENCH_"+time.Now().UTC().Format("2006-01-02")+".json")
		}
	}
	if *compare != "" {
		return nil // an explicit baseline wins over the store's newest
	}
	rec, err := runstore.Latest(autoStore, runstore.Filter{Kind: runstore.KindBench})
	if err != nil {
		return err
	}
	if rec == nil || rec.Bench == nil {
		shared.Logger().Info("no baseline trajectory point yet; this run seeds the trajectory", "store", *auto)
		return nil
	}
	autoBase, autoBaseLabel = rec.Bench, fmt.Sprintf("%s (store %s)", rec.ID, *auto)
	if *jsonPath != "" {
		if _, err := os.Stat(*jsonPath); err == nil {
			shared.Logger().Info("baseline is today's file; this run will overwrite it after comparing", "path", *jsonPath)
		}
	}
	shared.Logger().Info("auto-comparing against newest baseline",
		"baseline", rec.ID, "generated", rec.Bench.Generated)
	return nil
}

// loadBaseline resolves a -compare argument: a BENCH_*.json document,
// or a run-store directory whose newest bench record (by generation
// time) becomes the baseline.
func loadBaseline(path string) (string, *jsonReport, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		st, err := runstore.OpenFS(path, runstore.FSOptions{})
		if err != nil {
			return "", nil, err
		}
		defer st.Close()
		if _, err := runstore.IngestBenchDir(st, path, nil); err != nil {
			return "", nil, err
		}
		rec, err := runstore.Latest(st, runstore.Filter{Kind: runstore.KindBench})
		if err != nil {
			return "", nil, err
		}
		if rec == nil || rec.Bench == nil {
			return "", nil, fmt.Errorf("no bench records in run store %s", path)
		}
		return fmt.Sprintf("%s (store %s)", rec.ID, path), rec.Bench, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("reading baseline: %w", err)
	}
	var base jsonReport
	if err := json.Unmarshal(b, &base); err != nil {
		return "", nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return path, &base, nil
}

func runTables() error {
	fmt.Printf("GOMAXPROCS=%d, window=%v\n\n", runtime.GOMAXPROCS(0), *duration)
	if *repeat < 1 {
		*repeat = 1
	}
	for round := 0; round < *repeat; round++ {
		if *repeat > 1 {
			fmt.Printf("-- measurement round %d/%d --\n\n", round+1, *repeat)
		}
		if err := runOnce(); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
		fmt.Printf("wrote %d tables to %s\n", len(report.Tables), *jsonPath)
	}
	return nil
}

func runOnce() error {
	switch *table {
	case "stacks":
		benchStacks()
	case "exchangers":
		benchExchangers()
	case "syncqueue":
		benchSyncQueue()
	case "queues":
		benchQueues()
	case "duals":
		benchDuals()
	case "elimk":
		benchElimK()
	case "monitor":
		benchMonitor()
	case "all":
		benchStacks()
		benchExchangers()
		benchSyncQueue()
		benchQueues()
		benchDuals()
		benchElimK()
		benchMonitor()
	default:
		return fmt.Errorf("unknown table %q", *table)
	}
	return nil
}

// regression identifies the worst cell of a -compare run: how far below
// baseline it fell (percent) and which cell it was.
type regression struct {
	pct  float64
	cell string
}

// compareBaseline prints, per table, the percent delta of every cell
// present in both the baseline document and this run (positive =
// faster than baseline). Cells only one side has are counted and
// noted, never compared. Returns the worst regression.
func compareBaseline(label string, base *jsonReport, tables []jsonTable) (regression, error) {
	if base == nil {
		return regression{}, fmt.Errorf("no baseline document")
	}
	fmt.Printf("compare vs %s (baseline: gomaxprocs=%d, window=%s, generated %s)\n",
		label, base.GOMAXPROCS, base.Window, base.Generated)
	if base.GOMAXPROCS != runtime.GOMAXPROCS(0) || base.Window != duration.String() {
		fmt.Printf("note: baseline settings differ from this run (gomaxprocs=%d, window=%v); deltas are indicative only\n",
			runtime.GOMAXPROCS(0), *duration)
	}

	baseTables := make(map[string]jsonTable, len(base.Tables))
	for _, t := range base.Tables {
		baseTables[t.ID] = t
	}
	worst := regression{pct: -1}
	skipped := 0
	for _, cur := range tables {
		bt, ok := baseTables[cur.ID]
		if !ok {
			fmt.Printf("\n%s: not in baseline, skipped\n", cur.ID)
			skipped++
			continue
		}
		baseCols := make(map[int]int, len(bt.Columns)) // column value -> index
		for i, c := range bt.Columns {
			baseCols[c] = i
		}
		baseRows := make(map[string][]float64, len(bt.Rows))
		for _, r := range bt.Rows {
			baseRows[r.Name] = r.OpsPerSec
		}
		fmt.Printf("\n%s — delta vs baseline (%%)\n", cur.Title)
		fmt.Printf("%-22s", cur.ColumnLabel)
		for _, c := range cur.Columns {
			fmt.Printf("%12d", c)
		}
		fmt.Println()
		for _, row := range cur.Rows {
			bvals, ok := baseRows[row.Name]
			if !ok {
				fmt.Printf("%-22s%12s\n", row.Name, "(new row)")
				skipped++
				continue
			}
			fmt.Printf("%-22s", row.Name)
			for i, c := range cur.Columns {
				j, ok := baseCols[c]
				if !ok || j >= len(bvals) || i >= len(row.OpsPerSec) || bvals[j] <= 0 {
					fmt.Printf("%12s", "-")
					skipped++
					continue
				}
				delta := (row.OpsPerSec[i] - bvals[j]) / bvals[j] * 100
				fmt.Printf("%+11.1f%%", delta)
				if -delta > worst.pct {
					worst = regression{
						pct:  -delta,
						cell: fmt.Sprintf("%s %q %s=%d", cur.ID, row.Name, cur.ColumnLabel, c),
					}
				}
			}
			fmt.Println()
		}
	}
	fmt.Println()
	if skipped > 0 {
		fmt.Printf("%d cell(s)/table(s) present on only one side were not compared\n", skipped)
	}
	if worst.pct > 0 {
		fmt.Printf("worst regression: %.1f%% (%s)\n", worst.pct, worst.cell)
	} else {
		fmt.Println("no cell regressed below its baseline")
	}
	return worst, nil
}

// sweep runs work on each goroutine count for the window and returns
// successful ops/sec per count. work(tid) performs one operation attempt
// and reports whether it succeeded.
func sweep(counts []int, work func(tid calgo.ThreadID) bool) []float64 {
	out := make([]float64, len(counts))
	for i, g := range counts {
		var ops atomic.Int64
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tid := calgo.ThreadID(w + 1)
				n := int64(0)
				for !stop.Load() {
					if work(tid) {
						n++
					}
				}
				ops.Add(n)
			}(w)
		}
		time.Sleep(*duration)
		stop.Store(true)
		wg.Wait()
		out[i] = float64(ops.Load()) / duration.Seconds()
	}
	return out
}

func gCounts() []int {
	counts := []int{1, 2, 4, 8}
	for g := 16; g <= *maxG; g *= 2 {
		counts = append(counts, g)
	}
	return counts
}

func printTable(title string, counts []int, rows map[string][]float64, order []string) {
	recordTable(title, "goroutines", counts, rows, order)
	fmt.Println(title)
	fmt.Printf("%-22s", "goroutines")
	for _, g := range counts {
		fmt.Printf("%12d", g)
	}
	fmt.Println()
	for _, name := range order {
		fmt.Printf("%-22s", name)
		for _, v := range rows[name] {
			fmt.Printf("%12.0f", v)
		}
		fmt.Println()
	}
	fmt.Println()
}

// benchStacks is experiment B1: balanced push/pop throughput.
func benchStacks() {
	counts := gCounts()
	treiber := calgo.NewTreiberStack("S")
	elim, err := calgo.NewElimStack("ES", calgo.ElimStackWithSlots(runtime.GOMAXPROCS(0)), calgo.ElimStackWithWaitPolicy(calgo.SpinWait(*spin)))
	if err != nil {
		panic(err)
	}
	lock := calgo.NewLockStack()

	rows := map[string][]float64{
		"treiber (lock-free)": sweep(counts, func(tid calgo.ThreadID) bool {
			treiber.Push(tid, int64(tid))
			treiber.Pop(tid)
			return true
		}),
		"elimination stack": sweep(counts, func(tid calgo.ThreadID) bool {
			_ = elim.Push(tid, int64(tid))
			elim.Pop(tid)
			return true
		}),
		"lock-based stack": sweep(counts, func(tid calgo.ThreadID) bool {
			lock.Push(tid, int64(tid))
			lock.Pop(tid)
			return true
		}),
	}
	printTable("B1: stack throughput, balanced push/pop (ops/sec; one op = push+pop)",
		counts, rows, []string{"treiber (lock-free)", "elimination stack", "lock-based stack"})
}

// benchExchangers is experiment B2: pairing throughput.
func benchExchangers() {
	counts := gCounts()
	cas := calgo.NewExchanger("E", calgo.ExchangerWithWaitPolicy(calgo.SpinWait(*spin)))
	lock := calgo.NewLockExchanger(50 * time.Microsecond)
	ch := make(chan int64)

	rows := map[string][]float64{
		"cas exchanger (Fig.1)": sweep(counts, func(tid calgo.ThreadID) bool {
			ok, _ := cas.Exchange(tid, int64(tid))
			return ok
		}),
		"lock exchanger": sweep(counts, func(tid calgo.ThreadID) bool {
			ok, _ := lock.Exchange(tid, int64(tid))
			return ok
		}),
		// Blocking rendezvous with the same 50µs give-up window as the
		// lock exchanger (an unbounded select would hang the 1-goroutine
		// cell and ignore the stop flag).
		"go channel rendezvous": sweep(counts, func(tid calgo.ThreadID) bool {
			timer := time.NewTimer(50 * time.Microsecond)
			defer timer.Stop()
			select {
			case ch <- int64(tid):
				return true
			case <-ch:
				return true
			case <-timer.C:
				return false
			}
		}),
	}
	printTable("B2: exchanger throughput (successful exchanges/sec, both sides counted)",
		counts, rows, []string{"cas exchanger (Fig.1)", "lock exchanger", "go channel rendezvous"})
}

// benchSyncQueue is experiment B5: hand-off throughput with half the
// goroutines putting and half taking.
func benchSyncQueue() {
	counts := []int{2, 4, 8}
	for g := 16; g <= *maxG; g *= 2 {
		counts = append(counts, g)
	}
	q := calgo.NewSyncQueue("SQ", calgo.SyncQueueWithWaitPolicy(calgo.SpinWait(*spin)))
	// A striped variant: G/2 independent rendezvous slots with random slot
	// choice — the elimination-array principle applied to the synchronous
	// queue, as in the scalable synchronous queues the paper cites ([22]).
	striped := make([]*calgo.SyncQueue, *maxG/2)
	for i := range striped {
		striped[i] = calgo.NewSyncQueue(calgo.ObjectID(fmt.Sprintf("SQ%d", i)), calgo.SyncQueueWithWaitPolicy(calgo.SpinWait(*spin)))
	}
	ch := make(chan int64)

	rows := map[string][]float64{
		"dual syncqueue": sweep(counts, func(tid calgo.ThreadID) bool {
			if tid%2 == 0 {
				return q.TryPut(tid, int64(tid))
			}
			_, ok := q.TryTake(tid)
			return ok
		}),
		"striped syncqueue": sweep(counts, func(tid calgo.ThreadID) bool {
			q := striped[rand.IntN(len(striped))]
			if tid%2 == 0 {
				return q.TryPut(tid, int64(tid))
			}
			_, ok := q.TryTake(tid)
			return ok
		}),
		"go channel": sweep(counts, func(tid calgo.ThreadID) bool {
			timer := time.NewTimer(50 * time.Microsecond)
			defer timer.Stop()
			if tid%2 == 0 {
				select {
				case ch <- int64(tid):
					return true
				case <-timer.C:
					return false
				}
			}
			select {
			case <-ch:
				return true
			case <-timer.C:
				return false
			}
		}),
	}
	printTable("B5: synchronous queue successful hand-off sides/sec (half putters, half takers)",
		counts, rows, []string{"dual syncqueue", "striped syncqueue", "go channel"})
}

// benchQueues is experiment B7: FIFO queue throughput, Michael-Scott vs a
// lock-based queue (the queue-side analogue of B1).
func benchQueues() {
	counts := gCounts()
	ms := calgo.NewMSQueue("Q")
	lock := calgo.NewLockQueue()
	rows := map[string][]float64{
		"michael-scott": sweep(counts, func(tid calgo.ThreadID) bool {
			ms.Enq(tid, int64(tid))
			ms.Deq(tid)
			return true
		}),
		"lock-based queue": sweep(counts, func(tid calgo.ThreadID) bool {
			lock.Enq(tid, int64(tid))
			lock.Deq(tid)
			return true
		}),
	}
	printTable("B7: FIFO queue throughput, balanced enq/deq (ops/sec; one op = enq+deq)",
		counts, rows, []string{"michael-scott", "lock-based queue"})
}

// benchDuals is experiment B8: hand-off throughput of the §6 dual data
// structures, half producers and half consumers with bounded patience.
func benchDuals() {
	counts := []int{2, 4, 8}
	for g := 16; g <= *maxG; g *= 2 {
		counts = append(counts, g)
	}
	ds := calgo.NewDualStack("DS", calgo.DualStackWithWaitPolicy(calgo.SpinWait(*spin)))
	dq := calgo.NewDualQueue("DQ", calgo.DualQueueWithWaitPolicy(calgo.SpinWait(*spin)))
	// Each goroutine alternates produce/consume so the structures stay
	// bounded regardless of the window length.
	rows := map[string][]float64{
		"dual stack": sweep(counts, func(tid calgo.ThreadID) bool {
			ds.Push(tid, int64(tid))
			_, ok := ds.TryPop(tid, 4)
			return ok
		}),
		"dual queue": sweep(counts, func(tid calgo.ThreadID) bool {
			dq.Enq(tid, int64(tid))
			_, ok := dq.TryDeq(tid, 4)
			return ok
		}),
	}
	printTable("B8: dual data structures, completed produce+consume rounds/sec",
		counts, rows, []string{"dual stack", "dual queue"})
}

// benchElimK is experiment B6: the elimination-array width ablation at a
// fixed high goroutine count.
func benchElimK() {
	g := *maxG
	ks := []int{1, 2, 4, 8, 16}
	title := fmt.Sprintf("B6: elimination stack throughput vs array width K (goroutines=%d)", g)
	fmt.Println(title)
	fmt.Printf("%-10s%14s\n", "K", "ops/sec")
	rates := make([]float64, 0, len(ks))
	for _, k := range ks {
		es, err := calgo.NewElimStack("ES", calgo.ElimStackWithSlots(k), calgo.ElimStackWithWaitPolicy(calgo.SpinWait(*spin)))
		if err != nil {
			panic(err)
		}
		r := sweep([]int{g}, func(tid calgo.ThreadID) bool {
			_ = es.Push(tid, int64(tid))
			es.Pop(tid)
			return true
		})
		rates = append(rates, r[0])
		fmt.Printf("%-10d%14.0f\n", k, r[0])
	}
	fmt.Println()
	recordTable(title, "K", ks, map[string][]float64{"elimination stack": rates}, []string{"elimination stack"})
}

// benchMonitor is experiment B12: checker throughput (history events/sec)
// of the O(n log n) specialized monitors against the memoized parallel
// DFS, on unambiguous linearizable histories of growing size. DFS cells
// are bounded: a run that exhausts the default state budget or the cell
// deadline records 0 (printed as a zero, skipped by -compare), and the
// 100k-event DFS cell is not attempted at all — the checker's real-time
// order alone is an O(n²) matrix there (~40 GB of pairs at 200k events),
// which is precisely the gap the monitors close.
func benchMonitor() {
	sizes := []int{1_000, 10_000, 100_000} // history events; ops = events/2
	const dfsMaxEvents = 10_000
	kinds := []struct {
		name string
		sp   calgo.Spec
		gen  func(n, threads int, seed int64, obj calgo.ObjectID) calgo.History
	}{
		{"queue", calgo.NewQueueSpec("B"), monitor.GenQueue},
		{"stack", calgo.NewStackSpec("B"), monitor.GenStack},
		{"set", calgo.NewSetSpec("B"), monitor.GenSet},
		{"pqueue", calgo.NewPQueueSpec("B"), monitor.GenPQueue},
	}
	rows := make(map[string][]float64, 2*len(kinds))
	var order []string
	for _, k := range kinds {
		monRates := make([]float64, len(sizes))
		dfsRates := make([]float64, len(sizes))
		for i, events := range sizes {
			h := k.gen(events/2, 4, 42, "B")
			monRates[i] = checkerRate(h, k.sp, events, calgo.EngineMonitor)
			if events <= dfsMaxEvents {
				dfsRates[i] = checkerRate(h, k.sp, events, calgo.EngineDFS)
			}
		}
		rows[k.name+" monitor"] = monRates
		rows[k.name+" dfs"] = dfsRates
		order = append(order, k.name+" monitor", k.name+" dfs")
	}
	title := "B12: checker throughput on unambiguous histories, specialized monitor vs DFS (events/sec; 0 = over budget or not attempted)"
	recordTable(title, "events", sizes, rows, order)
	fmt.Println(title)
	fmt.Printf("%-22s", "events")
	for _, n := range sizes {
		fmt.Printf("%12d", n)
	}
	fmt.Println()
	for _, name := range order {
		fmt.Printf("%-22s", name)
		for _, v := range rows[name] {
			fmt.Printf("%12.0f", v)
		}
		fmt.Println()
	}
	fmt.Println()
}

// checkerRate measures one B12 cell: repeated full checks of h within the
// measurement window (always at least one), returning events/sec. A cell
// whose single check cannot finish inside 10 windows (min 5s) or exhausts
// the state budget scores 0.
func checkerRate(h calgo.History, sp calgo.Spec, events int, eng calgo.Engine) float64 {
	c, err := calgo.NewChecker(sp, calgo.WithEngine(eng))
	if err != nil {
		panic(err)
	}
	cellCap := 10 * *duration
	if cellCap < 5*time.Second {
		cellCap = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), cellCap)
	defer cancel()
	start := time.Now()
	runs := 0
	for {
		res, err := c.Check(ctx, h)
		if err != nil || res.Verdict != calgo.VerdictSat {
			return 0 // deadline, budget, or (unexpected) rejection
		}
		runs++
		if elapsed := time.Since(start); elapsed >= *duration || ctx.Err() != nil {
			return float64(runs*events) / elapsed.Seconds()
		}
	}
}
