package main

import (
	"flag"
	"testing"
	"time"

	"calgo"
)

func TestGCounts(t *testing.T) {
	old := *maxG
	defer func() { *maxG = old }()
	*maxG = 32
	got := gCounts()
	want := []int{1, 2, 4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("gCounts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gCounts = %v, want %v", got, want)
		}
	}
}

func TestSweepCountsSuccesses(t *testing.T) {
	old := *duration
	defer func() { *duration = old }()
	*duration = 10 * time.Millisecond
	// Alternate success/failure per call: roughly half the rate.
	var parity [64]bool
	all := sweep([]int{1, 2}, func(tid calgo.ThreadID) bool {
		parity[tid] = !parity[tid]
		return parity[tid]
	})
	if len(all) != 2 {
		t.Fatalf("sweep returned %d cells", len(all))
	}
	for i, v := range all {
		if v <= 0 {
			t.Errorf("cell %d = %f, want positive rate", i, v)
		}
	}
}

func TestRunUnknownTable(t *testing.T) {
	oldTable := *table
	defer func() { *table = oldTable }()
	*table = "bogus"
	// run() calls flag.Parse on the default set; neutralize os.Args side
	// effects by parsing an empty set.
	flag.CommandLine.Parse(nil)
	if err := run(); err == nil {
		t.Error("unknown table should error")
	}
}

func TestBenchTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock sweeps in -short mode")
	}
	oldDur, oldMax := *duration, *maxG
	defer func() { *duration, *maxG = oldDur, oldMax }()
	*duration = 5 * time.Millisecond
	*maxG = 2
	benchStacks()
	benchExchangers()
	benchSyncQueue()
	benchQueues()
	benchElimK()
}
