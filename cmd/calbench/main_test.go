package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"calgo"
)

func TestGCounts(t *testing.T) {
	old := *maxG
	defer func() { *maxG = old }()
	*maxG = 32
	got := gCounts()
	want := []int{1, 2, 4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("gCounts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gCounts = %v, want %v", got, want)
		}
	}
}

func TestSweepCountsSuccesses(t *testing.T) {
	old := *duration
	defer func() { *duration = old }()
	*duration = 10 * time.Millisecond
	// Alternate success/failure per call: roughly half the rate.
	var parity [64]bool
	all := sweep([]int{1, 2}, func(tid calgo.ThreadID) bool {
		parity[tid] = !parity[tid]
		return parity[tid]
	})
	if len(all) != 2 {
		t.Fatalf("sweep returned %d cells", len(all))
	}
	for i, v := range all {
		if v <= 0 {
			t.Errorf("cell %d = %f, want positive rate", i, v)
		}
	}
}

func TestRunUnknownTable(t *testing.T) {
	oldTable := *table
	defer func() { *table = oldTable }()
	*table = "bogus"
	if err := runTables(); err == nil {
		t.Error("unknown table should error")
	}
}

// TestJSONReport pins the -json schema: table IDs, column labels and one
// rate per column, round-tripping through the encoder.
func TestJSONReport(t *testing.T) {
	oldReport := report
	defer func() { report = oldReport }()
	report = jsonReport{}
	recordTable("B1: stack throughput", "goroutines", []int{1, 2},
		map[string][]float64{"treiber (lock-free)": {100, 200}},
		[]string{"treiber (lock-free)"})
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := writeJSON(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got jsonReport
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("wrote invalid JSON: %v", err)
	}
	if len(got.Tables) != 1 || got.Tables[0].ID != "B1" || got.Tables[0].ColumnLabel != "goroutines" {
		t.Errorf("tables = %+v", got.Tables)
	}
	if got.GOMAXPROCS < 1 || got.Generated == "" || got.Window == "" {
		t.Errorf("metadata missing: %+v", got)
	}
	row := got.Tables[0].Rows[0]
	if row.Name != "treiber (lock-free)" || len(row.OpsPerSec) != 2 || row.OpsPerSec[1] != 200 {
		t.Errorf("row = %+v", row)
	}
}

func TestBenchTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock sweeps in -short mode")
	}
	oldDur, oldMax := *duration, *maxG
	defer func() { *duration, *maxG = oldDur, oldMax }()
	*duration = 5 * time.Millisecond
	*maxG = 2
	benchStacks()
	benchExchangers()
	benchSyncQueue()
	benchQueues()
	benchElimK()
}
