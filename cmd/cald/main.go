// Command cald is the calgo checking-as-a-service daemon: a
// long-running process that accepts histories over HTTP and serves
// three-valued CAL/linearizability verdicts, hardened for production
// traffic.
//
// Usage:
//
//	cald -addr 127.0.0.1:8419 -journal cald.journal
//	calcheck -remote http://127.0.0.1:8419 -spec exchanger history.txt
//
// The job and stream APIs ride on the same ops mux every calgo CLI
// serves:
//
//	POST /jobs                submit a history + spec selection -> job id
//	GET  /jobs/{id}           poll a verdict (?watch=1 streams via SSE)
//	GET  /jobs                list jobs
//	POST /jobs/{id}/cancel    cancel a pending or running job
//	POST /streams             open an online checking stream
//	POST /streams/{id}/events feed a batch; response = verdict frame
//	GET  /streams/{id}        poll the frame (?watch=1 streams via SSE)
//	POST /streams/{id}/close  run end-of-stream checks; final frame
//	/metrics /statusz /flightz /runsz /queryz /debug/pprof/   the ops surface
//	/storeapi/v1/*            calgo.storeapi/v1 remote-store protocol —
//	                          every daemon is a federation backend
//	/queryz?fleet=1           fan the query out across -fleet peers
//
// Robustness properties (see EXPERIMENTS.md "Checking as a service"):
// bounded queue with 429 + Retry-After load shedding; per-client
// token-bucket rate limiting; a verdict cache keyed by the
// canonicalized-history fingerprint so replayed traffic never re-pays
// the search; per-job deadlines and budgets clamped by the -max-*
// server limits (exhaustion surfaces as UNKNOWN, never a hung request);
// and a crash-safe append-only journal — SIGTERM drains running jobs,
// pending ones persist, and a restarted daemon resumes them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"calgo"
	"calgo/internal/cliflags"
	"calgo/internal/jobs"
	"calgo/internal/obs"
	"calgo/internal/obs/serve"
	"calgo/internal/render"
	"calgo/internal/runstore"
)

// runLabels is the run-record label set cald publishes (the vocabulary
// pinned in EXPERIMENTS.md "Run-history store"); empty values are
// omitted so label selectors stay exact-match.
func runLabels(spec, mode, engine, object, client string) map[string]string {
	labels := make(map[string]string, 5)
	for k, v := range map[string]string{
		"spec": spec, "mode": mode, "engine": engine, "object": object, "client": client,
	} {
		if v != "" {
			labels[k] = v
		}
	}
	return labels
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8419", "listen address for the job API + ops endpoint (\":0\" picks a port)")
		workers      = flag.Int("workers", 0, "checker worker goroutines (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 64, "pending-job queue bound; a full queue sheds submissions with 429 + Retry-After")
		rate         = flag.Float64("rate", 0, "per-client sustained admission rate in jobs/second (0 = unlimited)")
		burst        = flag.Int("burst", 8, "per-client token-bucket burst")
		cacheEntries = flag.Int("cache-entries", 1024, "verdict-cache capacity (identical histories answered without re-searching; negative disables)")
		journalPath  = flag.String("journal", "", "crash-safe job journal path; pending jobs are resumed on restart (\"\" = volatile)")
		storeDir     = flag.String("store", "", "durable run-history store directory; every completed job and stream verdict is persisted and served across restarts on /runsz and /queryz (\"\" = bounded in-memory ring)")
		fleet        = flag.String("fleet", "", "comma-separated peer daemon URLs (http://host:port) backing /queryz?fleet=1: one query fanned out across the fleet, merged by time with origin labels, degrading honestly when peers are down")
		fleetTimeout = flag.Duration("fleet-timeout", 5*time.Second, "per-peer deadline for fleet fan-out queries")
		retMaxAge    = flag.Duration("retention-max-age", 0, "expire run records older than this (0 = unbounded); applied crash-safely every -retention-interval")
		retMaxRecs   = flag.Int("retention-max-records", 0, "keep only the newest N run records overall (0 = unbounded)")
		retKeepBench = flag.Int("retention-keep-bench", 0, "keep only the newest N bench records (0 = unbounded)")
		retKeepRep   = flag.Int("retention-keep-report", 0, "keep only the newest N report records (0 = unbounded)")
		retInterval  = flag.Duration("retention-interval", time.Minute, "how often the retention policy sweeps the run-history store")
		maxBytes     = flag.Int("max-history-bytes", 1<<20, "reject history uploads larger than this before parsing")
		maxEvents    = flag.Int("max-history-events", 1<<16, "reject histories with more events than this")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Second, "clamp (and default) for per-job wall-clock deadlines")
		maxStates    = flag.Int("max-states", 4_000_000, "clamp (and default) for per-job state budgets")
		memoBudget   = flag.Int("memo-budget", 0, "clamp for per-job memoization budgets in bytes (0 = unlimited)")
		maxStreams   = flag.Int("max-streams", 16, "bound on concurrently open checking streams; at the bound opens are shed with 429 + Retry-After")
		streamWindow = flag.Int("stream-window", calgo.DefaultStreamWindow, "per-stream fallback re-check window (and server-wide clamp) in events")
		streamCheck  = flag.Int("stream-check-every", calgo.DefaultStreamCheckEvery, "per-stream fallback re-check cadence (and server-wide clamp) in events")
		streamIdle   = flag.Duration("stream-idle", 5*time.Minute, "close streams with no events for this long (negative disables)")
		drainWait    = flag.Duration("drain", 30*time.Second, "how long SIGTERM waits for running jobs before interrupting them")
		logLevel     = flag.String("log-level", "info", "diagnostic log level: debug, info, warn or error")
		logFormat    = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cald [flags]\n")
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), cliflags.ExitLegend)
	}
	flag.Parse()

	logger, err := cliflags.NewLogger("cald", *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cald: %v\n", err)
		return 2
	}

	metrics := obs.NewMetrics()
	if err := metrics.PublishExpvar("calgo"); err != nil {
		logger.Debug("expvar publication skipped", "err", err)
	}
	live := obs.NewLiveRun("cald")
	flight := obs.NewFlightRecorder(cliflags.FlightEvents)
	var store runstore.Store
	if *storeDir != "" {
		fs, err := runstore.OpenFS(*storeDir, runstore.FSOptions{Metrics: metrics, Logger: logger})
		if err != nil {
			logger.Error("opening run-history store", "dir", *storeDir, "err", err)
			return 2
		}
		defer fs.Close()
		store = fs
		logger.Info("run-history store open", "dir", *storeDir, "records", fs.Len())
	}
	var fleetStore runstore.Store
	if *fleet != "" {
		fs, err := runstore.OpenStores(*fleet, runstore.FSOptions{},
			runstore.FederatedOptions{PerTargetTimeout: *fleetTimeout, Logger: logger})
		if err != nil {
			logger.Error("opening fleet targets", "fleet", *fleet, "err", err)
			return 2
		}
		defer fs.Close()
		fleetStore = fs
		logger.Info("fleet configured", "targets", *fleet)
	}
	ops := serve.New(serve.Config{Tool: "cald", Metrics: metrics, Flight: flight, Live: live,
		Store: store, Fleet: fleetStore})

	mgr, err := jobs.New(jobs.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		Rate:             *rate,
		Burst:            *burst,
		CacheEntries:     *cacheEntries,
		JournalPath:      *journalPath,
		MaxHistoryBytes:  *maxBytes,
		MaxHistoryEvents: *maxEvents,
		MaxTimeout:       *maxTimeout,
		MaxStates:        *maxStates,
		MemoBudget:       *memoBudget,
		Metrics:          metrics,
		Logger:           logger,
		OnDone: func(j jobs.Job) {
			// Every *executed* search lands on /runsz and /statusz —
			// cache hits deliberately do not, which is how the CI smoke
			// proves a replayed submission re-paid nothing.
			ops.AddRun(render.Run{Name: j.ID + " " + j.Request.Spec + "/" + j.Request.Mode,
				Verdict: j.Verdict, Detail: j.Detail})
			doc := render.NewReport("cald", time.Now())
			doc.Runs = []render.Run{{Name: j.ID, Verdict: j.Verdict, Detail: j.Detail}}
			ops.AddRecord(&runstore.Record{
				Report: doc,
				Labels: runLabels(j.Request.Spec, j.Request.Mode, j.Request.Engine,
					j.Request.Object, j.Client),
			})
		},
	})
	if err != nil {
		logger.Error("starting job manager", "err", err)
		return 2
	}

	sm := jobs.NewStreamManager(jobs.StreamConfig{
		MaxStreams:     *maxStreams,
		Rate:           *rate,
		Burst:          *burst,
		MaxBatchBytes:  *maxBytes,
		MaxBatchEvents: *maxEvents,
		Window:         *streamWindow,
		CheckEvery:     *streamCheck,
		IdleTimeout:    *streamIdle,
		Metrics:        metrics,
		Logger:         logger,
		OnClose: func(d jobs.StreamDoc) {
			ops.AddRun(render.Run{Name: d.ID + " " + d.Request.Spec + "/stream",
				Verdict: d.Verdict.Status.String(), Detail: d.Verdict.String()})
			doc := render.NewReport("cald", time.Now())
			doc.Runs = []render.Run{{Name: d.ID,
				Verdict: d.Verdict.Status.String(), Detail: d.Verdict.String()}}
			ops.AddRecord(&runstore.Record{
				Report: doc,
				Labels: runLabels(d.Request.Spec, "stream", d.Request.Engine,
					d.Request.Object, d.Client),
			})
		},
	})

	ops.Mount("/jobs", mgr.Handler())
	ops.Mount("/jobs/", mgr.Handler())
	ops.Mount("/streams", sm.Handler())
	ops.Mount("/streams/", sm.Handler())
	bound, err := ops.Start(*addr)
	if err != nil {
		logger.Error("starting server", "err", err)
		return 2
	}
	samplerStop := obs.StartRuntimeSampler(metrics, cliflags.RuntimeSampleInterval)
	defer samplerStop()
	live.SetPhase("serving")
	logger.Info("cald serving",
		"url", fmt.Sprintf("http://%s/", bound),
		"endpoints", "/jobs /streams /metrics /statusz /flightz /runsz /queryz /storeapi/ /debug/pprof/")

	ctx, stop := cliflags.SignalContext()
	defer stop()

	// Retention: sweep the run-history store on a timer. Tombstones are
	// fsynced before records drop from view, so a SIGKILL mid-sweep
	// never resurrects expired history; the runstore.expired counter
	// (calgo_runstore_expired_total) and runstore.retained gauge track
	// the policy's effect on /metrics.
	policy := runstore.Retention{MaxAge: *retMaxAge, MaxRecords: *retMaxRecs}
	if *retKeepBench > 0 || *retKeepRep > 0 {
		policy.KeepPerKind = map[string]int{}
		if *retKeepBench > 0 {
			policy.KeepPerKind[runstore.KindBench] = *retKeepBench
		}
		if *retKeepRep > 0 {
			policy.KeepPerKind[runstore.KindReport] = *retKeepRep
		}
	}
	if !policy.Empty() {
		ret, ok := ops.Store().(runstore.Retainer)
		if !ok {
			logger.Error("run-history store cannot apply a retention policy", "policy", policy.String())
			return 2
		}
		logger.Info("retention policy active", "policy", policy.String(), "every", *retInterval)
		go func() {
			tick := time.NewTicker(*retInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n, err := ret.Retain(policy); err != nil {
						logger.Warn("retention sweep failed", "err", err)
					} else if n > 0 {
						logger.Info("retention sweep", "expired", n)
					}
				}
			}
		}()
	}

	<-ctx.Done()
	stop() // a second signal now kills the process with default disposition

	// Graceful shutdown: refuse new work, let running jobs finish (up to
	// -drain), keep pending ones journaled for the next instance, then
	// drain the HTTP side (SSE watchers get their final frame).
	live.SetPhase("draining")
	logger.Info("signal received; draining", "wait", *drainWait)
	sm.Drain() // streams finalize immediately: verdicts are incremental
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	left := mgr.Drain(drainCtx)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), cliflags.OpsShutdownTimeout)
	defer cancelHTTP()
	_ = ops.Shutdown(httpCtx)
	if left > 0 {
		logger.Info("drained with pending jobs journaled", "pending", left, "journal", *journalPath)
	} else {
		logger.Info("drained clean")
	}
	return 0
}
