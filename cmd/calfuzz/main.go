// Command calfuzz stress-tests the instrumented objects with randomized
// concurrent workloads and verifies every run end to end: the recorded
// CA-trace must be admitted by the object's specification, the captured
// history must agree with the trace (Definition 5), and the CAL checker
// must accept the history independently (Definition 6).
//
// Usage:
//
//	calfuzz -iters 50 -seed 1 -object all
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"calgo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calfuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		iters  = flag.Int("iters", 30, "iterations per object")
		seed   = flag.Int64("seed", 1, "base random seed")
		object = flag.String("object", "all", "object to fuzz: exchanger, elimstack, syncqueue, dualstack, dualqueue, msqueue, snapshot, all")
	)
	flag.Parse()

	targets := []string{"exchanger", "elimstack", "syncqueue", "dualstack", "dualqueue", "msqueue", "snapshot"}
	if *object != "all" {
		targets = []string{*object}
	}
	for _, target := range targets {
		fuzz, ok := fuzzers[target]
		if !ok {
			return fmt.Errorf("unknown object %q", target)
		}
		for i := 0; i < *iters; i++ {
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			if err := fuzz(rng); err != nil {
				return fmt.Errorf("%s iteration %d (seed %d): %w", target, i, *seed+int64(i), err)
			}
		}
		fmt.Printf("✓ %-10s %d randomized runs verified\n", target, *iters)
	}
	return nil
}

var fuzzers = map[string]func(*rand.Rand) error{
	"exchanger": fuzzExchanger,
	"elimstack": fuzzElimStack,
	"syncqueue": fuzzSyncQueue,
	"dualstack": fuzzDualStack,
	"dualqueue": fuzzDualQueue,
	"msqueue":   fuzzMSQueue,
	"snapshot":  fuzzSnapshot,
}

func fuzzExchanger(rng *rand.Rand) error {
	rec := calgo.NewRecorder()
	ex := calgo.NewExchanger("E",
		calgo.ExchangerWithRecorder(rec),
		calgo.ExchangerWithWaitPolicy(calgo.SpinWait(rng.Intn(128)+1)),
	)
	workers := rng.Intn(6) + 2
	per := rng.Intn(20) + 5
	var cap calgo.Capture
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := calgo.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				cap.Inv(tid, "E", calgo.MethodExchange, calgo.Int(v))
				ok, out := ex.Exchange(tid, v)
				cap.Res(tid, "E", calgo.MethodExchange, calgo.Pair(ok, out))
			}
		}(w)
	}
	wg.Wait()
	return verify(cap.History(), rec.View("E"), calgo.NewExchangerSpec("E"))
}

func fuzzElimStack(rng *rand.Rand) error {
	rec := calgo.NewRecorder()
	es, err := calgo.NewElimStack("ES",
		calgo.ElimStackWithRecorder(rec),
		calgo.ElimStackWithSlots(rng.Intn(4)+1),
		calgo.ElimStackWithWaitPolicy(calgo.SpinWait(rng.Intn(64)+1)),
	)
	if err != nil {
		return err
	}
	pairs := rng.Intn(3) + 1
	per := rng.Intn(15) + 5
	var cap calgo.Capture
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, "ES", calgo.MethodPush, calgo.Int(v))
				if err := es.Push(tid, v); err != nil {
					panic(err)
				}
				cap.Res(tid, "ES", calgo.MethodPush, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "ES", calgo.MethodPop, calgo.Unit())
				v := es.Pop(tid)
				cap.Res(tid, "ES", calgo.MethodPop, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	return verify(cap.History(), rec.View("ES"), calgo.NewStackSpec("ES"))
}

func fuzzSyncQueue(rng *rand.Rand) error {
	rec := calgo.NewRecorder()
	q := calgo.NewSyncQueue("SQ",
		calgo.SyncQueueWithRecorder(rec),
		calgo.SyncQueueWithWaitPolicy(calgo.SpinWait(rng.Intn(64)+1)),
	)
	pairs := rng.Intn(3) + 1
	per := rng.Intn(12) + 4
	var cap calgo.Capture
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, "SQ", calgo.MethodPut, calgo.Int(v))
				q.Put(tid, v)
				cap.Res(tid, "SQ", calgo.MethodPut, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "SQ", calgo.MethodTake, calgo.Unit())
				v := q.Take(tid)
				cap.Res(tid, "SQ", calgo.MethodTake, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	return verify(cap.History(), rec.View("SQ"), calgo.NewSyncQueueSpec("SQ"))
}

func verify(h calgo.History, tr calgo.Trace, sp calgo.Spec) error {
	if _, err := calgo.SpecAccepts(sp, tr); err != nil {
		return fmt.Errorf("recorded trace rejected by %s: %w", sp.Name(), err)
	}
	if err := calgo.Agrees(h, tr); err != nil {
		return fmt.Errorf("history does not agree with recorded trace: %w", err)
	}
	r, err := calgo.CAL(h, sp)
	if err != nil {
		return err
	}
	if !r.OK {
		return fmt.Errorf("CAL checker rejected the history: %s", r.Reason)
	}
	return nil
}

func fuzzDualStack(rng *rand.Rand) error {
	rec := calgo.NewRecorder()
	s := calgo.NewDualStack("DS",
		calgo.DualStackWithRecorder(rec),
		calgo.DualStackWithWaitPolicy(calgo.SpinWait(rng.Intn(8)+1)),
	)
	pairs := rng.Intn(3) + 1
	per := rng.Intn(12) + 4
	var cap calgo.Capture
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, "DS", calgo.MethodPush, calgo.Int(v))
				s.Push(tid, v)
				cap.Res(tid, "DS", calgo.MethodPush, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "DS", calgo.MethodPop, calgo.Unit())
				v := s.Pop(tid)
				cap.Res(tid, "DS", calgo.MethodPop, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	return verify(cap.History(), rec.View("DS"), calgo.NewDualStackSpec("DS"))
}

func fuzzMSQueue(rng *rand.Rand) error {
	rec := calgo.NewRecorder()
	q := calgo.NewMSQueue("Q", calgo.MSQueueWithRecorder(rec))
	workers := rng.Intn(4) + 2
	per := rng.Intn(16) + 4
	var cap calgo.Capture
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := calgo.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				if i%2 == 0 {
					cap.Inv(tid, "Q", calgo.MethodEnq, calgo.Int(v))
					q.Enq(tid, v)
					cap.Res(tid, "Q", calgo.MethodEnq, calgo.Bool(true))
				} else {
					cap.Inv(tid, "Q", calgo.MethodDeq, calgo.Unit())
					ok, got := q.Deq(tid)
					cap.Res(tid, "Q", calgo.MethodDeq, calgo.Pair(ok, got))
				}
			}
		}(w)
	}
	wg.Wait()
	return verify(cap.History(), rec.View("Q"), calgo.NewQueueSpec("Q"))
}

func fuzzSnapshot(rng *rand.Rand) error {
	n := rng.Intn(4) + 2
	s, err := calgo.NewImmediateSnapshot("IS", n)
	if err != nil {
		return err
	}
	var cap calgo.Capture
	results := make([]calgo.SnapshotResult, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(p + 1)
			v := int64(100 + p)
			cap.Inv(tid, "IS", calgo.MethodUpdate, calgo.Int(v))
			view, err := s.Update(p, tid, v)
			if err != nil {
				panic(err) // slots are distinct by construction
			}
			cap.Res(tid, "IS", calgo.MethodUpdate, calgo.Pair(true, int64(len(view))))
			results[p] = calgo.SnapshotResult{Thread: tid, Value: v, View: view}
		}(p)
	}
	wg.Wait()
	tr, err := calgo.DeriveSnapshotTrace("IS", results)
	if err != nil {
		return err
	}
	return verify(cap.History(), tr, calgo.NewSnapshotSpec("IS", n))
}

func fuzzDualQueue(rng *rand.Rand) error {
	rec := calgo.NewRecorder()
	q := calgo.NewDualQueue("DQ",
		calgo.DualQueueWithRecorder(rec),
		calgo.DualQueueWithWaitPolicy(calgo.SpinWait(rng.Intn(8)+1)),
	)
	pairs := rng.Intn(3) + 1
	per := rng.Intn(12) + 4
	var cap calgo.Capture
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, "DQ", calgo.MethodEnq, calgo.Int(v))
				q.Enq(tid, v)
				cap.Res(tid, "DQ", calgo.MethodEnq, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "DQ", calgo.MethodDeq, calgo.Unit())
				v := q.Deq(tid)
				cap.Res(tid, "DQ", calgo.MethodDeq, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	return verify(cap.History(), rec.View("DQ"), calgo.NewDualQueueSpec("DQ"))
}
