// Command calfuzz stress-tests the instrumented objects with randomized
// concurrent workloads and verifies every run end to end: the recorded
// CA-trace must be admitted by the object's specification, the captured
// history must agree with the trace (Definition 5), and the CAL checker
// must accept the history independently (Definition 6).
//
// Runs can additionally be subjected to fault injection (-chaos): seeded
// policies that delay, stall, bias and force CAS retries at the objects'
// labeled synchronization points; every verification must still pass,
// since chaos perturbs timing, never semantics. The per-run structural
// checks (spec admits the trace, history agrees with it) happen inline;
// the CAL checks for a target's runs are batched and fanned across a
// checker pool (-workers, default GOMAXPROCS). -timeout bounds each
// batch of CAL checks; a batch that exhausts it counts as UNKNOWN
// (exit 3), not as a violation.
//
// Usage:
//
//	calfuzz -iters 50 -seed 1 -object all
//	calfuzz -iters 20 -object exchanger -chaos havoc -workers 4
//	calfuzz -iters 10 -object pqueue -emit /tmp/histories
//
// -emit dumps every generated history to a directory in the interchange
// format, one file per run, so a sweep doubles as a corpus generator:
// the files replay with calcheck (any -engine) and feed the monitor/DFS
// cross-validation loop. -engine selects the checker engine for the
// batched CAL checks; the default auto routes unambiguous collection
// histories to the O(n log n) specialized monitors.
//
// -soak-stream N switches to the streaming soak: instead of batched
// checks, each fuzzed history is fed event-by-event through an online
// checker (calgo.NewStream, tuned by -stream-engine, -stream-window and
// -stream-check-every), every other run gets one response corrupted,
// and every streaming verdict is cross-validated against the batch CAL
// verdict of the same history — Violation exactly where the batch says
// UNSAT, never on a history the batch accepts.
//
// Observability: -metrics-json aggregates the CAL checkers' counters
// across every batch into one JSON document, -trace streams sampled
// search events and dumps a flight-recorder ring when a run fails or is
// inconclusive, -pprof serves net/http/pprof, and -serve exposes the
// live ops endpoint (/metrics Prometheus exposition, /statusz live run
// status, /flightz, /runsz). Diagnostics are structured log lines shaped
// by -log-level and -log-format. Run with -h for the exit-code legend.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sync"

	"path/filepath"

	"calgo"
	"calgo/internal/cliflags"
)

func main() {
	os.Exit(run())
}

// errUnknown marks an inconclusive (budget-bound) verification; errUsage
// marks bad flags. Anything else is a real verification failure.
var (
	errUnknown = errors.New("verification inconclusive")
	errUsage   = errors.New("usage")
)

// fuzzExit maps a sweep outcome to the exit-code convention: 0 verified,
// 1 failed verification, 2 usage error, 3 inconclusive within budget.
func fuzzExit(err error, logger *slog.Logger) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errUnknown):
		logger.Warn("sweep inconclusive", "err", err)
		return 3
	case errors.Is(err, errUsage):
		logger.Error("bad flags", "err", err)
		return 2
	default:
		logger.Error("verification failed", "err", err)
		return 1
	}
}

func run() int {
	var (
		iters  = flag.Int("iters", 30, "iterations per object")
		seed   = flag.Int64("seed", 1, "base random seed")
		object = flag.String("object", "all", "object to fuzz: exchanger, elimstack, syncqueue, dualstack, dualqueue, msqueue, pqueue, snapshot, all")
		chaos  = flag.String("chaos", "none", "fault-injection policy: none, yield-storm, stall, cas-storm, bias, havoc, all")
		emit   = flag.String("emit", "", "dump every generated history to this directory in the interchange format (one file per run), for replay with calcheck")
		soak   = flag.Int("soak-stream", 0, "streaming soak: feed this many fuzzed histories per object through an online checker and cross-validate every verdict against the batch CAL check (0 = off)")
	)
	shared := cliflags.Register("calfuzz")
	shared.RegisterStream()
	flag.Parse()

	if err := shared.Start(); err != nil {
		shared.Logger().Error("startup failed", "err", err)
		return 2
	}
	defer shared.Close()

	// An interrupt (^C, SIGTERM) cancels the sweep between batches; the
	// partial -metrics-json/-report outputs still flush through Finish.
	ctx, stop := cliflags.SignalContext()
	defer stop()

	var err error
	if *soak > 0 {
		err = soakStream(ctx, *soak, *seed, *object, shared)
	} else {
		err = sweep(ctx, *iters, *seed, *object, *chaos, *emit, shared)
	}
	exit := fuzzExit(err, shared.Logger())
	if exit == 1 || exit == 3 {
		shared.DumpFlight()
	}
	if err := shared.Finish(exit); err != nil {
		shared.Logger().Error("flushing outputs", "err", err)
		return 2
	}
	return exit
}

func sweep(ctx context.Context, iters int, seed int64, object, chaos, emit string, shared *cliflags.Set) error {
	policies := []string{chaos}
	if chaos == "all" {
		policies = calgo.ChaosPolicyNames()
	} else if _, ok := calgo.ChaosPolicies()[chaos]; !ok {
		return fmt.Errorf("%w: unknown chaos policy %q", errUsage, chaos)
	}
	if emit != "" {
		if err := os.MkdirAll(emit, 0o755); err != nil {
			return fmt.Errorf("%w: creating -emit directory: %v", errUsage, err)
		}
	}

	targets := []string{"exchanger", "elimstack", "syncqueue", "dualstack", "dualqueue", "msqueue", "pqueue", "snapshot"}
	if object != "all" {
		targets = []string{object}
	}
	for _, target := range targets {
		fuzz, ok := fuzzers[target]
		if !ok {
			return fmt.Errorf("%w: unknown object %q", errUsage, target)
		}
		for _, policy := range policies {
			runs := make([]pending, 0, iters)
			for i := 0; i < iters; i++ {
				// A fresh policy instance per run: stateful policies keep
				// per-thread state valid only under one injector's lock.
				inj := calgo.NewChaosInjector(calgo.ChaosPolicies()[policy], seed+int64(i))
				rng := rand.New(rand.NewSource(seed + int64(i)))
				run, err := fuzz(rng, inj)
				if err != nil {
					return fmt.Errorf("%s iteration %d (chaos %s, seed %d): %w",
						target, i, policy, seed+int64(i), err)
				}
				run.iter, run.seed = i, seed+int64(i)
				if emit != "" {
					name := filepath.Join(emit, fmt.Sprintf("%s-%s-%d.txt", target, policy, run.seed))
					if werr := os.WriteFile(name, []byte(calgo.FormatHistory(run.h)), 0o644); werr != nil {
						return fmt.Errorf("writing -emit history: %w", werr)
					}
				}
				runs = append(runs, run)
			}
			if err := checkBatch(ctx, runs, target, policy, shared); err != nil {
				return err
			}
			if shared.WantsRuns() {
				shared.AddRun(calgo.RunReport{
					Name:    target + "/" + policy,
					Verdict: "OK",
					Detail:  fmt.Sprintf("%d randomized runs verified", iters),
				})
			}
			if policy == "none" {
				fmt.Printf("✓ %-10s %d randomized runs verified\n", target, iters)
			} else {
				fmt.Printf("✓ %-10s %d randomized runs verified under chaos policy %s\n", target, iters, policy)
			}
		}
	}
	return nil
}

// soakStream is the -soak-stream mode: each fuzzed history is replayed
// through calgo.NewStream one event at a time and the streaming verdict
// is cross-validated against the batch CAL verdict of the identical
// history. Every other run has one removal response corrupted so the
// soak exercises both directions of the agreement contract.
func soakStream(ctx context.Context, iters int, seed int64, object string, shared *cliflags.Set) error {
	targets := []string{"exchanger", "elimstack", "syncqueue", "dualstack", "dualqueue", "msqueue", "pqueue", "snapshot"}
	if object != "all" {
		targets = []string{object}
	}
	none := calgo.ChaosPolicies()["none"]
	for _, target := range targets {
		fuzz, ok := fuzzers[target]
		if !ok {
			return fmt.Errorf("%w: unknown object %q", errUsage, target)
		}
		corrupted := 0
		for i := 0; i < iters; i++ {
			if ctx.Err() != nil {
				return fmt.Errorf("%w: streaming soak interrupted by signal", errUnknown)
			}
			inj := calgo.NewChaosInjector(none, seed+int64(i))
			rng := rand.New(rand.NewSource(seed + int64(i)))
			run, err := fuzz(rng, inj)
			if err != nil {
				return fmt.Errorf("%s soak iteration %d (seed %d): %w", target, i, seed+int64(i), err)
			}
			h := run.h
			if i%2 == 1 {
				if bad, ok := corruptRemoval(h); ok {
					h = bad
					corrupted++
				}
			}
			label := fmt.Sprintf("%s soak iteration %d (seed %d)", target, i, seed+int64(i))
			if err := crossValidateStream(ctx, label, run.sp, h, shared); err != nil {
				return err
			}
		}
		if shared.WantsRuns() {
			shared.AddRun(calgo.RunReport{
				Name:    target + "/soak-stream",
				Verdict: "OK",
				Detail:  fmt.Sprintf("%d streamed runs cross-validated (%d with injected defects)", iters, corrupted),
			})
		}
		fmt.Printf("✓ %-10s %d streamed runs cross-validated against batch CAL (%d with injected defects)\n",
			target, iters, corrupted)
	}
	return nil
}

// corruptRemoval flips the last pair-returning response to a value no
// invocation ever supplied, yielding a history the batch checker is
// expected to reject. Histories without such a response (possible for
// tiny runs) are streamed pristine.
func corruptRemoval(h calgo.History) (calgo.History, bool) {
	for i := len(h) - 1; i >= 0; i-- {
		ev := h[i]
		if !ev.IsRes() || ev.Ret.Kind != calgo.KindPair {
			continue
		}
		out := append(calgo.History(nil), h...)
		out[i].Ret = calgo.Pair(true, 987_654_321)
		return out, true
	}
	return h, false
}

// crossValidateStream pins the streaming/batch agreement contract on one
// history: VIOLATION-at-event-k exactly where the batch verdict is
// UNSAT, Sat-so-far only where it is SAT; a Degraded stream or an
// UNKNOWN batch check waives the comparison as inconclusive.
func crossValidateStream(ctx context.Context, label string, sp calgo.Spec, h calgo.History, shared *cliflags.Set) error {
	st, err := calgo.NewStream(sp, append(shared.StreamOptions(), shared.Options()...)...)
	if err != nil {
		return fmt.Errorf("%s: opening stream: %w", label, err)
	}
	if err := st.FeedAll(h); err != nil {
		st.Close()
		return fmt.Errorf("%s: feeding stream: %w", label, err)
	}
	sv := st.Close()

	cctx, cancel := shared.WithTimeout(ctx)
	defer cancel()
	br, err := calgo.CAL(cctx, h, sp, append(shared.Options(), calgo.WithEngine(shared.Engine()))...)
	if err != nil {
		return fmt.Errorf("%s: batch cross-check: %w", label, err)
	}
	switch {
	case sv.Status == calgo.StreamDegraded:
		return fmt.Errorf("%s: %w: stream degraded: %s", label, errUnknown, sv.Reason)
	case br.Verdict == calgo.VerdictUnknown:
		return fmt.Errorf("%s: %w: batch cross-check inconclusive: %s", label, errUnknown, br.Unknown.Reason)
	case (sv.Status == calgo.StreamViolation) != (br.Verdict == calgo.VerdictUnsat):
		return fmt.Errorf("%s: streaming/batch disagreement: stream says %s, batch says %s",
			label, sv, calgo.VerdictWord(br.Verdict))
	}
	return nil
}

// pending is one fuzz run whose structural checks passed and whose CAL
// check is deferred to the target's batch.
type pending struct {
	h    calgo.History
	sp   calgo.Spec
	iter int
	seed int64
}

// checkBatch fans the deferred CAL checks of one target/policy sweep
// across a checker pool, grouping runs by their (comparable) spec value
// so each group shares one reusable Checker — the same construction path
// (NewChecker + CheckMany) the library's batch entry point and the chaos
// soak use. -timeout bounds each group's batch of checks.
func checkBatch(parent context.Context, runs []pending, target, policy string, shared *cliflags.Set) error {
	groups := make(map[calgo.Spec][]int)
	var order []calgo.Spec
	for i, r := range runs {
		if _, seen := groups[r.sp]; !seen {
			order = append(order, r.sp)
		}
		groups[r.sp] = append(groups[r.sp], i)
	}
	for _, sp := range order {
		idx := groups[sp]
		histories := make([]calgo.History, len(idx))
		for j, i := range idx {
			histories[j] = runs[i].h
		}
		ctx, cancel := shared.WithTimeout(parent)
		defer cancel()
		c, err := calgo.NewChecker(sp, append(shared.Options(), calgo.WithEngine(shared.Engine()))...)
		if err != nil {
			return err
		}
		results, err := c.CheckMany(ctx, histories)
		if err != nil {
			if errors.Is(parent.Err(), context.Canceled) {
				return fmt.Errorf("%w: %s/%s interrupted by signal", errUnknown, target, policy)
			}
			return err
		}
		for j, r := range results {
			run := runs[idx[j]]
			label := fmt.Sprintf("%s iteration %d (chaos %s, seed %d)", target, run.iter, policy, run.seed)
			switch r.Verdict {
			case calgo.VerdictUnknown:
				explainFailure(shared, label, r)
				return fmt.Errorf("%s: %w: %s (%s)", label, errUnknown, r.Unknown.Reason, r.Unknown.Frontier)
			case calgo.VerdictUnsat:
				explainFailure(shared, label, r)
				return fmt.Errorf("%s: CAL checker rejected the history: %s", label, r.Reason)
			}
		}
	}
	return nil
}

// explainFailure routes a failed or inconclusive run's evidence through
// the shared explainability sinks (-explain, -dot, -report). A fuzz
// failure is exactly when the reproduction evidence matters, so all three
// fire on the first bad result.
func explainFailure(shared *cliflags.Set, label string, r calgo.Result) {
	if r.Explanation == nil {
		return
	}
	if shared.Explain() {
		fmt.Print(calgo.RenderTimeline(r.Explanation, calgo.TimelineOptions{}))
	}
	if err := shared.WriteDOT(calgo.RenderDOT(r.Explanation)); err != nil {
		shared.Logger().Error("writing DOT", "err", err)
	}
	if shared.WantsRuns() {
		detail := r.Reason
		if r.Verdict == calgo.VerdictUnknown {
			detail = fmt.Sprintf("%s (%s)", r.Unknown.Reason, r.Unknown.Frontier)
		}
		shared.AddRun(calgo.RunReport{
			Name:     label,
			Verdict:  calgo.VerdictWord(r.Verdict),
			Detail:   detail,
			Timeline: calgo.RenderTimeline(r.Explanation, calgo.TimelineOptions{ASCII: true}),
			DOT:      calgo.RenderDOT(r.Explanation),
		})
	}
}

var fuzzers = map[string]func(*rand.Rand, *calgo.ChaosInjector) (pending, error){
	"exchanger": fuzzExchanger,
	"elimstack": fuzzElimStack,
	"syncqueue": fuzzSyncQueue,
	"dualstack": fuzzDualStack,
	"dualqueue": fuzzDualQueue,
	"msqueue":   fuzzMSQueue,
	"pqueue":    fuzzPQueue,
	"snapshot":  fuzzSnapshot,
}

// fuzzPQueue drives the mutex-guarded min-heap with distinct priorities,
// so the captured histories are unambiguous and (under -engine auto)
// exercise the specialized pqueue monitor against a live object.
func fuzzPQueue(rng *rand.Rand, inj *calgo.ChaosInjector) (pending, error) {
	rec := calgo.NewBoundedRecorder(1 << 14)
	pq := calgo.NewPQueueHeap("P", calgo.PQueueHeapWithRecorder(rec), calgo.PQueueHeapWithChaos(inj))
	workers := rng.Intn(4) + 2
	per := rng.Intn(16) + 4
	var cap calgo.Capture
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := calgo.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				if i%2 == 0 {
					cap.Inv(tid, "P", calgo.MethodInsert, calgo.Int(v))
					pq.Insert(tid, v)
					cap.Res(tid, "P", calgo.MethodInsert, calgo.Bool(true))
				} else {
					cap.Inv(tid, "P", calgo.MethodExtractMin, calgo.Unit())
					ok, got := pq.ExtractMin(tid)
					cap.Res(tid, "P", calgo.MethodExtractMin, calgo.Pair(ok, got))
				}
			}
		}(w)
	}
	wg.Wait()
	tr, err := checkedView(rec, "P")
	if err != nil {
		return pending{}, err
	}
	return verify(cap.History(), tr, calgo.NewPQueueSpec("P"))
}

func fuzzExchanger(rng *rand.Rand, inj *calgo.ChaosInjector) (pending, error) {
	rec := calgo.NewBoundedRecorder(1 << 14)
	ex := calgo.NewExchanger("E",
		calgo.ExchangerWithRecorder(rec),
		calgo.ExchangerWithWaitPolicy(calgo.SpinWait(rng.Intn(128)+1)),
		calgo.ExchangerWithChaos(inj),
	)
	workers := rng.Intn(6) + 2
	per := rng.Intn(20) + 5
	var cap calgo.Capture
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := calgo.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				cap.Inv(tid, "E", calgo.MethodExchange, calgo.Int(v))
				ok, out := ex.Exchange(tid, v)
				cap.Res(tid, "E", calgo.MethodExchange, calgo.Pair(ok, out))
			}
		}(w)
	}
	wg.Wait()
	tr, err := checkedView(rec, "E")
	if err != nil {
		return pending{}, err
	}
	return verify(cap.History(), tr, calgo.NewExchangerSpec("E"))
}

func fuzzElimStack(rng *rand.Rand, inj *calgo.ChaosInjector) (pending, error) {
	rec := calgo.NewBoundedRecorder(1 << 14)
	es, err := calgo.NewElimStack("ES",
		calgo.ElimStackWithRecorder(rec),
		calgo.ElimStackWithSlots(rng.Intn(4)+1),
		calgo.ElimStackWithWaitPolicy(calgo.SpinWait(rng.Intn(64)+1)),
		calgo.ElimStackWithChaos(inj),
	)
	if err != nil {
		return pending{}, err
	}
	pairs := rng.Intn(3) + 1
	per := rng.Intn(15) + 5
	var cap calgo.Capture
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, "ES", calgo.MethodPush, calgo.Int(v))
				if err := es.Push(tid, v); err != nil {
					panic(err)
				}
				cap.Res(tid, "ES", calgo.MethodPush, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "ES", calgo.MethodPop, calgo.Unit())
				v := es.Pop(tid)
				cap.Res(tid, "ES", calgo.MethodPop, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	tr, err := checkedView(rec, "ES")
	if err != nil {
		return pending{}, err
	}
	return verify(cap.History(), tr, calgo.NewStackSpec("ES"))
}

func fuzzSyncQueue(rng *rand.Rand, inj *calgo.ChaosInjector) (pending, error) {
	rec := calgo.NewBoundedRecorder(1 << 14)
	q := calgo.NewSyncQueue("SQ",
		calgo.SyncQueueWithRecorder(rec),
		calgo.SyncQueueWithWaitPolicy(calgo.SpinWait(rng.Intn(64)+1)),
		calgo.SyncQueueWithChaos(inj),
	)
	pairs := rng.Intn(3) + 1
	per := rng.Intn(12) + 4
	var cap calgo.Capture
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, "SQ", calgo.MethodPut, calgo.Int(v))
				q.Put(tid, v)
				cap.Res(tid, "SQ", calgo.MethodPut, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "SQ", calgo.MethodTake, calgo.Unit())
				v := q.Take(tid)
				cap.Res(tid, "SQ", calgo.MethodTake, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	tr, err := checkedView(rec, "SQ")
	if err != nil {
		return pending{}, err
	}
	return verify(cap.History(), tr, calgo.NewSyncQueueSpec("SQ"))
}

// verify performs the per-run structural checks (spec admits the
// recorded trace; history agrees with it, Definition 5) and defers the
// CAL check (Definition 6) to the target's batch.
func verify(h calgo.History, tr calgo.Trace, sp calgo.Spec) (pending, error) {
	if _, err := calgo.SpecAccepts(sp, tr); err != nil {
		return pending{}, fmt.Errorf("recorded trace rejected by %s: %w", sp.Name(), err)
	}
	if err := calgo.Agrees(h, tr); err != nil {
		return pending{}, fmt.Errorf("history does not agree with recorded trace: %w", err)
	}
	return pending{h: h, sp: sp}, nil
}

// checkedView snapshots the recorder's view of o after verifying the trace
// was not truncated; a bounded recorder that overflowed yields no evidence.
func checkedView(rec *calgo.Recorder, o calgo.ObjectID) (calgo.Trace, error) {
	if err := rec.Err(); err != nil {
		return nil, err
	}
	return rec.View(o), nil
}

func fuzzDualStack(rng *rand.Rand, inj *calgo.ChaosInjector) (pending, error) {
	rec := calgo.NewBoundedRecorder(1 << 14)
	s := calgo.NewDualStack("DS",
		calgo.DualStackWithRecorder(rec),
		calgo.DualStackWithWaitPolicy(calgo.SpinWait(rng.Intn(8)+1)),
		calgo.DualStackWithChaos(inj),
	)
	pairs := rng.Intn(3) + 1
	per := rng.Intn(12) + 4
	var cap calgo.Capture
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, "DS", calgo.MethodPush, calgo.Int(v))
				s.Push(tid, v)
				cap.Res(tid, "DS", calgo.MethodPush, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "DS", calgo.MethodPop, calgo.Unit())
				v := s.Pop(tid)
				cap.Res(tid, "DS", calgo.MethodPop, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	tr, err := checkedView(rec, "DS")
	if err != nil {
		return pending{}, err
	}
	return verify(cap.History(), tr, calgo.NewDualStackSpec("DS"))
}

func fuzzMSQueue(rng *rand.Rand, inj *calgo.ChaosInjector) (pending, error) {
	rec := calgo.NewBoundedRecorder(1 << 14)
	q := calgo.NewMSQueue("Q", calgo.MSQueueWithRecorder(rec), calgo.MSQueueWithChaos(inj))
	workers := rng.Intn(4) + 2
	per := rng.Intn(16) + 4
	var cap calgo.Capture
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := calgo.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				if i%2 == 0 {
					cap.Inv(tid, "Q", calgo.MethodEnq, calgo.Int(v))
					q.Enq(tid, v)
					cap.Res(tid, "Q", calgo.MethodEnq, calgo.Bool(true))
				} else {
					cap.Inv(tid, "Q", calgo.MethodDeq, calgo.Unit())
					ok, got := q.Deq(tid)
					cap.Res(tid, "Q", calgo.MethodDeq, calgo.Pair(ok, got))
				}
			}
		}(w)
	}
	wg.Wait()
	tr, err := checkedView(rec, "Q")
	if err != nil {
		return pending{}, err
	}
	return verify(cap.History(), tr, calgo.NewQueueSpec("Q"))
}

func fuzzSnapshot(rng *rand.Rand, inj *calgo.ChaosInjector) (pending, error) {
	n := rng.Intn(4) + 2
	s, err := calgo.NewImmediateSnapshot("IS", n, calgo.SnapshotWithChaos(inj))
	if err != nil {
		return pending{}, err
	}
	var cap calgo.Capture
	results := make([]calgo.SnapshotResult, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(p + 1)
			v := int64(100 + p)
			cap.Inv(tid, "IS", calgo.MethodUpdate, calgo.Int(v))
			view, err := s.Update(p, tid, v)
			if err != nil {
				panic(err) // slots are distinct by construction
			}
			cap.Res(tid, "IS", calgo.MethodUpdate, calgo.Pair(true, int64(len(view))))
			results[p] = calgo.SnapshotResult{Thread: tid, Value: v, View: view}
		}(p)
	}
	wg.Wait()
	tr, err := calgo.DeriveSnapshotTrace("IS", results)
	if err != nil {
		return pending{}, err
	}
	return verify(cap.History(), tr, calgo.NewSnapshotSpec("IS", n))
}

func fuzzDualQueue(rng *rand.Rand, inj *calgo.ChaosInjector) (pending, error) {
	rec := calgo.NewBoundedRecorder(1 << 14)
	q := calgo.NewDualQueue("DQ",
		calgo.DualQueueWithRecorder(rec),
		calgo.DualQueueWithWaitPolicy(calgo.SpinWait(rng.Intn(8)+1)),
		calgo.DualQueueWithChaos(inj),
	)
	pairs := rng.Intn(3) + 1
	per := rng.Intn(12) + 4
	var cap calgo.Capture
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, "DQ", calgo.MethodEnq, calgo.Int(v))
				q.Enq(tid, v)
				cap.Res(tid, "DQ", calgo.MethodEnq, calgo.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := calgo.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, "DQ", calgo.MethodDeq, calgo.Unit())
				v := q.Deq(tid)
				cap.Res(tid, "DQ", calgo.MethodDeq, calgo.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	tr, err := checkedView(rec, "DQ")
	if err != nil {
		return pending{}, err
	}
	return verify(cap.History(), tr, calgo.NewDualQueueSpec("DQ"))
}
