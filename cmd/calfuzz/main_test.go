package main

import (
	"math/rand"
	"testing"

	"calgo"
)

func TestAllFuzzersOnce(t *testing.T) {
	for name, fuzz := range fuzzers {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				if err := fuzz(rand.New(rand.NewSource(seed))); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestVerifyRejectsBadTrace(t *testing.T) {
	h := calgo.History{
		calgo.Inv(1, "E", calgo.MethodExchange, calgo.Int(3)),
		calgo.Res(1, "E", calgo.MethodExchange, calgo.Pair(false, 3)),
	}
	// Trace claims a lone successful exchange: spec-invalid.
	badTrace := calgo.Trace{calgo.Singleton(calgo.Operation{
		Thread: 1, Object: "E", Method: calgo.MethodExchange,
		Arg: calgo.Int(3), Ret: calgo.Pair(true, 4),
	})}
	if err := verify(h, badTrace, calgo.NewExchangerSpec("E")); err == nil {
		t.Error("spec-invalid trace must fail verification")
	}
	// Trace valid for the spec but disagreeing with the history.
	otherTrace := calgo.Trace{calgo.Singleton(calgo.Operation{
		Thread: 2, Object: "E", Method: calgo.MethodExchange,
		Arg: calgo.Int(9), Ret: calgo.Pair(false, 9),
	})}
	if err := verify(h, otherTrace, calgo.NewExchangerSpec("E")); err == nil {
		t.Error("disagreeing trace must fail verification")
	}
	// Matching trace passes.
	good := calgo.Trace{calgo.Singleton(calgo.Operation{
		Thread: 1, Object: "E", Method: calgo.MethodExchange,
		Arg: calgo.Int(3), Ret: calgo.Pair(false, 3),
	})}
	if err := verify(h, good, calgo.NewExchangerSpec("E")); err != nil {
		t.Errorf("valid run failed verification: %v", err)
	}
}
