package main

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"calgo"
	"calgo/internal/cliflags"
)

// testShared registers the shared flag set once for the test binary; its
// unparsed defaults (-timeout 0, -workers 0, observability off) match
// what the old direct checkBatch parameters exercised.
var testShared = cliflags.Register("calfuzz")

// fuzzAndCheck runs one fuzzer iteration end to end: the inline
// structural checks plus the (normally batched) CAL check.
func fuzzAndCheck(t *testing.T, name string, fuzz func(*rand.Rand, *calgo.ChaosInjector) (pending, error), rng *rand.Rand, inj *calgo.ChaosInjector) error {
	t.Helper()
	run, err := fuzz(rng, inj)
	if err != nil {
		return err
	}
	return checkBatch(context.Background(), []pending{run}, name, "test", testShared)
}

func TestAllFuzzersOnce(t *testing.T) {
	for name, fuzz := range fuzzers {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				if err := fuzzAndCheck(t, name, fuzz, rand.New(rand.NewSource(seed)), nil); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestAllFuzzersUnderChaos runs every fuzzer once per chaos policy: the
// full verification battery must still pass with faults injected.
func TestAllFuzzersUnderChaos(t *testing.T) {
	for _, policy := range calgo.ChaosPolicyNames() {
		for name, fuzz := range fuzzers {
			policy, name, fuzz := policy, name, fuzz
			t.Run(policy+"/"+name, func(t *testing.T) {
				t.Parallel()
				seed := int64(7)
				inj := calgo.NewChaosInjector(calgo.ChaosPolicies()[policy], seed)
				if err := fuzzAndCheck(t, name, fuzz, rand.New(rand.NewSource(seed)), inj); err != nil {
					t.Fatalf("policy %s seed %d: %v", policy, seed, err)
				}
				if st := inj.Stats(); st.Points == 0 && policy != "none" {
					t.Errorf("policy %s visited no injection points", policy)
				}
			})
		}
	}
}

func TestVerifyRejectsBadTrace(t *testing.T) {
	h := calgo.History{
		calgo.Inv(1, "E", calgo.MethodExchange, calgo.Int(3)),
		calgo.Res(1, "E", calgo.MethodExchange, calgo.Pair(false, 3)),
	}
	// Trace claims a lone successful exchange: spec-invalid.
	badTrace := calgo.Trace{calgo.Singleton(calgo.Operation{
		Thread: 1, Object: "E", Method: calgo.MethodExchange,
		Arg: calgo.Int(3), Ret: calgo.Pair(true, 4),
	})}
	if _, err := verify(h, badTrace, calgo.NewExchangerSpec("E")); err == nil {
		t.Error("spec-invalid trace must fail verification")
	}
	// Trace valid for the spec but disagreeing with the history.
	otherTrace := calgo.Trace{calgo.Singleton(calgo.Operation{
		Thread: 2, Object: "E", Method: calgo.MethodExchange,
		Arg: calgo.Int(9), Ret: calgo.Pair(false, 9),
	})}
	if _, err := verify(h, otherTrace, calgo.NewExchangerSpec("E")); err == nil {
		t.Error("disagreeing trace must fail verification")
	}
	// Matching trace passes.
	good := calgo.Trace{calgo.Singleton(calgo.Operation{
		Thread: 1, Object: "E", Method: calgo.MethodExchange,
		Arg: calgo.Int(3), Ret: calgo.Pair(false, 3),
	})}
	run, err := verify(h, good, calgo.NewExchangerSpec("E"))
	if err != nil {
		t.Errorf("valid run failed verification: %v", err)
	}
	if err := checkBatch(context.Background(), []pending{run}, "exchanger", "none", testShared); err != nil {
		t.Errorf("valid run failed the batched CAL check: %v", err)
	}
}

// TestCheckedViewRejectsOverflow pins that a truncated bounded recorder is
// never used as verification evidence.
func TestCheckedViewRejectsOverflow(t *testing.T) {
	rec := calgo.NewBoundedRecorder(1)
	for i := 0; i < 3; i++ {
		rec.Append(calgo.Singleton(calgo.Operation{
			Thread: 1, Object: "E", Method: calgo.MethodExchange,
			Arg: calgo.Int(int64(i)), Ret: calgo.Pair(false, int64(i)),
		}))
	}
	_, err := checkedView(rec, "E")
	var of *calgo.RecorderOverflowError
	if !errors.As(err, &of) {
		t.Fatalf("checkedView on overflowed recorder = %v, want *RecorderOverflowError", err)
	}
	if of.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", of.Dropped)
	}
}
