// Command calcheck decides concurrency-aware linearizability (or classical
// linearizability) of one or more histories read from files or stdin,
// against a named specification.
//
// Usage:
//
//	calcheck -spec exchanger -object E -mode cal history.txt
//	calcheck -spec stack -object S -mode lin < history.txt
//	calcheck -spec exchanger -workers 4 run1.txt run2.txt run3.txt
//
// With several history files the checks fan out across a worker pool
// (-workers, default GOMAXPROCS) and each file is reported on its own
// line prefixed with its name.
//
// The history format is line-oriented:
//
//	inv t1 E.exchange 3
//	res t1 E.exchange (true,4)
//
// The check is resource-bounded: -timeout imposes a wall-clock deadline,
// -max-states and -memo-budget bound the search, and the process responds
// to interrupts (SIGINT/SIGTERM) by reporting how far the search got
// instead of dying mid-answer.
//
// Observability: -metrics-json writes the search counters as JSON when
// done, -trace streams sampled search events and dumps a flight-recorder
// ring on VIOLATION/UNKNOWN, -progress prints live status lines, -pprof
// serves net/http/pprof, and -serve exposes the live ops endpoint
// (/metrics Prometheus exposition, /statusz live run status, /flightz,
// /runsz). Diagnostics are structured log lines shaped by -log-level and
// -log-format. Run with -h for the exit-code legend.
//
// Explainability: -explain renders a per-thread timeline of every
// verdict's evidence (concurrency windows, the matched CA-elements, the
// first blocked operation on VIOLATION); -dot writes a Graphviz view of
// the worst verdict's real-time order and CA-element partition; -report
// writes a self-contained calgo.report/v1 run report (JSON, or Markdown
// for a .md path).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"calgo"
	"calgo/internal/cliflags"
	"calgo/internal/jobs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specName   = flag.String("spec", "exchanger", "specification: exchanger, elimarray, stack, central-stack, dual-stack, queue, set, pqueue, syncqueue, register, snapshot")
		object     = flag.String("object", "E", "object identifier the spec constrains")
		threads    = flag.Int("threads", 4, "participant bound for -spec snapshot")
		mode       = flag.String("mode", "cal", "property: cal (concurrency-aware), lin (classical), setlin")
		verbose    = flag.Bool("v", false, "print the witness trace and search statistics")
		maxStats   = flag.Int("max-states", 4_000_000, "checker state budget")
		memoBudget = flag.Int("memo-budget", 0, "approximate memoization memory budget in bytes (0 = unlimited)")
		remote     = flag.String("remote", "", "check against a running cald at this base URL (e.g. http://127.0.0.1:8419) instead of locally; 429/5xx responses are retried with jittered exponential backoff")
	)
	shared := cliflags.Register("calcheck")
	flag.Parse()

	inputs, err := readInputs(flag.Args())
	if err != nil {
		shared.Logger().Error("reading inputs", "err", err)
		return 2
	}

	if *remote != "" {
		return runRemote(shared, *remote, inputs, *specName, *object, *threads, *mode, *verbose)
	}

	sp, err := specByName(*specName, calgo.ObjectID(*object), *threads)
	if err != nil {
		shared.Logger().Error("bad specification", "err", err)
		return 2
	}
	histories := make([]calgo.History, len(inputs))
	for i, in := range inputs {
		h, err := calgo.ParseHistoryFile(in.name, in.src)
		if err != nil {
			shared.Logger().Error("parsing history", "err", err)
			return 2
		}
		histories[i] = h
	}

	if err := shared.Start(); err != nil {
		shared.Logger().Error("startup failed", "err", err)
		return 2
	}
	defer shared.Close()

	// fail is the post-Start usage/environment exit: it still flushes
	// -metrics-json and -report, so every exit path after Start produces
	// the requested artifacts.
	fail := func(msg string, err error) int {
		shared.Logger().Error(msg, "err", err)
		if ferr := shared.Finish(2); ferr != nil {
			shared.Logger().Error("flushing outputs", "err", ferr)
		}
		return 2
	}

	sigCtx, stop := cliflags.SignalContext()
	defer stop()
	ctx, cancel := shared.WithTimeout(sigCtx)
	defer cancel()

	opts := append(shared.Options(), calgo.WithMaxStates(*maxStats), calgo.WithEngine(shared.Engine()))
	if *memoBudget > 0 {
		opts = append(opts, calgo.WithMemoBudget(*memoBudget))
	}
	switch *mode {
	case "cal", "setlin":
	case "lin":
		opts = append(opts, calgo.WithElementCap(1))
	default:
		return fail("bad flags", fmt.Errorf("unknown mode %q", *mode))
	}
	results, err := calgo.CheckMany(ctx, histories, sp, opts...)
	if err != nil {
		return fail("check failed", err)
	}

	exit, worstIdx := 0, -1
	for i, r := range results {
		prefix := ""
		if len(results) > 1 {
			prefix = inputs[i].name + ": "
		}
		code := report(prefix, r, sp.Name(), *mode, *verbose)
		if worstIdx < 0 || rankExit(code) > rankExit(exit) {
			worstIdx = i
		}
		exit = worstExit(exit, code)
		if shared.Explain() && r.Explanation != nil {
			fmt.Print(calgo.RenderTimeline(r.Explanation, calgo.TimelineOptions{}))
		}
		if shared.WantsRuns() && r.Explanation != nil {
			shared.AddRun(calgo.RunReport{
				Name:     inputs[i].name,
				Verdict:  calgo.VerdictWord(r.Verdict),
				Detail:   runDetail(r),
				Timeline: calgo.RenderTimeline(r.Explanation, calgo.TimelineOptions{ASCII: true}),
				DOT:      calgo.RenderDOT(r.Explanation),
			})
		}
	}
	// -dot renders the evidence of the run's worst verdict: the matched
	// CA-element partition on OK, the blocked operation on VIOLATION.
	if worstIdx >= 0 && results[worstIdx].Explanation != nil {
		if err := shared.WriteDOT(calgo.RenderDOT(results[worstIdx].Explanation)); err != nil {
			return fail("writing DOT", err)
		}
	}
	if exit != 0 {
		shared.DumpFlight()
	}
	if err := shared.Finish(exit); err != nil {
		shared.Logger().Error("flushing outputs", "err", err)
		return 2
	}
	return exit
}

// runRemote is -remote: each input is submitted to the cald daemon as a
// calgo.job/v1 document and polled to a verdict. The client absorbs the
// daemon's admission control — 429/503/5xx answers are retried with
// jittered exponential backoff honouring Retry-After — so a throttled
// run degrades to slower, not to failed. -timeout travels with the job
// as its server-side (clamped) deadline.
func runRemote(shared *cliflags.Set, base string, inputs []input, specName, object string, threads int, mode string, verbose bool) int {
	if err := shared.Start(); err != nil {
		shared.Logger().Error("startup failed", "err", err)
		return 2
	}
	defer shared.Close()
	ctx, stop := cliflags.SignalContext()
	defer stop()

	client := jobs.NewClient(base)
	client.OnRetry = func(attempt int, wait time.Duration, cause string) {
		shared.Logger().Warn("daemon busy; backing off", "attempt", attempt, "wait", wait, "cause", cause)
	}

	exit := 0
	for _, in := range inputs {
		prefix := ""
		if len(inputs) > 1 {
			prefix = in.name + ": "
		}
		job, err := client.Check(ctx, jobs.Request{
			Spec: specName, Object: object, Threads: threads, Mode: mode,
			Engine:    shared.Engine().String(),
			History:   in.src,
			TimeoutMS: shared.Timeout().Milliseconds(),
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Printf("%sUNKNOWN: interrupted while waiting on the daemon\n", prefix)
				exit = worstExit(exit, 3)
				break
			}
			shared.Logger().Error("remote check failed", "input", in.name, "err", err)
			if ferr := shared.Finish(2); ferr != nil {
				shared.Logger().Error("flushing outputs", "err", ferr)
			}
			return 2
		}
		exit = worstExit(exit, reportRemote(prefix, job, mode, verbose))
		if shared.WantsRuns() {
			shared.AddRun(calgo.RunReport{Name: in.name, Verdict: job.Verdict, Detail: job.Detail})
		}
	}
	if err := shared.Finish(exit); err != nil {
		shared.Logger().Error("flushing outputs", "err", err)
		return 2
	}
	return exit
}

// reportRemote renders a finished remote job in the local verdict
// vocabulary, marking cache answers so operators can see replay traffic
// being absorbed.
func reportRemote(prefix string, j jobs.Job, mode string, verbose bool) int {
	from := fmt.Sprintf(" [job %s", j.ID)
	if j.Cached {
		from += ", cached"
	}
	from += "]"
	if j.State == jobs.StateCanceled {
		fmt.Printf("%sUNKNOWN: job was canceled on the daemon%s\n", prefix, from)
		return 3
	}
	switch j.Verdict {
	case "OK":
		fmt.Printf("%sOK: history is %s w.r.t. %s%s\n", prefix, propertyName(mode), j.Request.Spec, from)
		if verbose {
			fmt.Println(j.Detail)
		}
		return 0
	case "VIOLATION":
		fmt.Printf("%sVIOLATION: history is not %s w.r.t. %s%s\n", prefix, propertyName(mode), j.Request.Spec, from)
		fmt.Println(j.Detail)
		return 1
	default:
		fmt.Printf("%sUNKNOWN: could not decide whether the history is %s w.r.t. %s%s\n",
			prefix, propertyName(mode), j.Request.Spec, from)
		fmt.Println(j.Detail)
		return 3
	}
}

// rankExit orders exit codes by severity: violation (1) dominates
// unknown (3), which dominates success (0).
func rankExit(c int) int {
	switch c {
	case 1:
		return 2
	case 3:
		return 1
	default:
		return 0
	}
}

// worstExit combines per-history exit codes under rankExit.
func worstExit(a, b int) int {
	if rankExit(b) > rankExit(a) {
		return b
	}
	return a
}

// runDetail summarizes one result for the -report document.
func runDetail(r calgo.Result) string {
	switch r.Verdict {
	case calgo.VerdictUnsat:
		return r.Reason
	case calgo.VerdictUnknown:
		return fmt.Sprintf("cause: %s; frontier: %s", r.Unknown.Reason, r.Unknown.Frontier)
	default:
		return fmt.Sprintf("states explored: %d (memo hits %d)", r.States, r.MemoHits)
	}
}

func report(prefix string, r calgo.Result, specName, mode string, verbose bool) int {
	if r.Verdict == calgo.VerdictUnknown {
		fmt.Printf("%sUNKNOWN: could not decide whether the history is %s w.r.t. %s\n",
			prefix, propertyName(mode), specName)
		fmt.Printf("cause: %s\n", r.Unknown.Reason)
		fmt.Printf("frontier: %s\n", r.Unknown.Frontier)
		if verbose && len(r.Unknown.PartialWitness) > 0 {
			fmt.Printf("partial witness: %s\n", r.Unknown.PartialWitness)
		}
		return 3
	}
	if r.OK {
		fmt.Printf("%sOK: history is %s w.r.t. %s\n", prefix, propertyName(mode), specName)
		if verbose {
			fmt.Printf("witness: %s\n", r.Witness)
			if len(r.Dropped) > 0 {
				fmt.Printf("dropped pending operations: %v\n", r.Dropped)
			}
			fmt.Printf("states explored: %d (memo hits %d)\n", r.States, r.MemoHits)
		}
		return 0
	}
	fmt.Printf("%sVIOLATION: history is not %s w.r.t. %s\n", prefix, propertyName(mode), specName)
	fmt.Println(r.Reason)
	if verbose {
		fmt.Printf("states explored: %d (memo hits %d)\n", r.States, r.MemoHits)
	}
	return 1
}

func propertyName(mode string) string {
	switch mode {
	case "cal":
		return "CA-linearizable"
	case "lin":
		return "linearizable"
	default:
		return "set-linearizable"
	}
}

func specByName(name string, o calgo.ObjectID, threads int) (calgo.Spec, error) {
	switch name {
	case "exchanger":
		return calgo.NewExchangerSpec(o), nil
	case "elimarray":
		return calgo.NewElimArraySpec(o), nil
	case "stack":
		return calgo.NewStackSpec(o), nil
	case "central-stack":
		return calgo.NewCentralStackSpec(o), nil
	case "dual-stack":
		return calgo.NewDualStackSpec(o), nil
	case "snapshot":
		return calgo.NewSnapshotSpec(o, threads), nil
	case "queue":
		return calgo.NewQueueSpec(o), nil
	case "set":
		return calgo.NewSetSpec(o), nil
	case "pqueue":
		return calgo.NewPQueueSpec(o), nil
	case "syncqueue":
		return calgo.NewSyncQueueSpec(o), nil
	case "register":
		return calgo.NewRegisterSpec(o), nil
	default:
		return nil, fmt.Errorf("unknown spec %q", name)
	}
}

type input struct {
	name, src string
}

// readInputs returns one history source per file argument, or a single
// stdin source when no files are given. Names are kept for diagnostics
// and per-file verdict prefixes.
func readInputs(args []string) ([]input, error) {
	if len(args) == 0 {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("reading stdin: %w", err)
		}
		return []input{{"<stdin>", string(b)}}, nil
	}
	inputs := make([]input, len(args))
	for i, arg := range args {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		inputs[i] = input{arg, string(b)}
	}
	return inputs, nil
}
