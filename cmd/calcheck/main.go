// Command calcheck decides concurrency-aware linearizability (or classical
// linearizability) of a history read from a file or stdin, against a named
// specification.
//
// Usage:
//
//	calcheck -spec exchanger -object E -mode cal history.txt
//	calcheck -spec stack -object S -mode lin < history.txt
//
// The history format is line-oriented:
//
//	inv t1 E.exchange 3
//	res t1 E.exchange (true,4)
//
// Exit status: 0 when the history satisfies the property, 1 when it does
// not, 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"calgo"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specName = flag.String("spec", "exchanger", "specification: exchanger, elimarray, stack, central-stack, dual-stack, queue, syncqueue, register, snapshot")
		object   = flag.String("object", "E", "object identifier the spec constrains")
		threads  = flag.Int("threads", 4, "participant bound for -spec snapshot")
		mode     = flag.String("mode", "cal", "property: cal (concurrency-aware), lin (classical), setlin")
		verbose  = flag.Bool("v", false, "print the witness trace and search statistics")
		maxStats = flag.Int("max-states", 4_000_000, "checker state budget")
	)
	flag.Parse()

	sp, err := specByName(*specName, calgo.ObjectID(*object), *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calcheck:", err)
		return 2
	}

	src, err := readInput(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "calcheck:", err)
		return 2
	}
	h, err := calgo.ParseHistory(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calcheck:", err)
		return 2
	}

	var r calgo.Result
	opts := []calgo.CheckOption{calgo.WithMaxStates(*maxStats)}
	switch *mode {
	case "cal":
		r, err = calgo.CAL(h, sp, opts...)
	case "lin":
		r, err = calgo.Linearizable(h, sp, opts...)
	case "setlin":
		r, err = calgo.SetLinearizable(h, sp, opts...)
	default:
		fmt.Fprintf(os.Stderr, "calcheck: unknown mode %q\n", *mode)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "calcheck:", err)
		return 2
	}

	if r.OK {
		fmt.Printf("OK: history is %s w.r.t. %s\n", propertyName(*mode), sp.Name())
		if *verbose {
			fmt.Printf("witness: %s\n", r.Witness)
			if len(r.Dropped) > 0 {
				fmt.Printf("dropped pending operations: %v\n", r.Dropped)
			}
			fmt.Printf("states explored: %d (memo hits %d)\n", r.States, r.MemoHits)
		}
		return 0
	}
	fmt.Printf("VIOLATION: history is not %s w.r.t. %s\n", propertyName(*mode), sp.Name())
	fmt.Println(r.Reason)
	if *verbose {
		fmt.Printf("states explored: %d (memo hits %d)\n", r.States, r.MemoHits)
	}
	return 1
}

func propertyName(mode string) string {
	switch mode {
	case "cal":
		return "CA-linearizable"
	case "lin":
		return "linearizable"
	default:
		return "set-linearizable"
	}
}

func specByName(name string, o calgo.ObjectID, threads int) (calgo.Spec, error) {
	switch name {
	case "exchanger":
		return calgo.NewExchangerSpec(o), nil
	case "elimarray":
		return calgo.NewElimArraySpec(o), nil
	case "stack":
		return calgo.NewStackSpec(o), nil
	case "central-stack":
		return calgo.NewCentralStackSpec(o), nil
	case "dual-stack":
		return calgo.NewDualStackSpec(o), nil
	case "snapshot":
		return calgo.NewSnapshotSpec(o, threads), nil
	case "queue":
		return calgo.NewQueueSpec(o), nil
	case "syncqueue":
		return calgo.NewSyncQueueSpec(o), nil
	case "register":
		return calgo.NewRegisterSpec(o), nil
	default:
		return nil, fmt.Errorf("unknown spec %q", name)
	}
}

func readInput(args []string) (string, error) {
	if len(args) == 0 {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", fmt.Errorf("reading stdin: %w", err)
		}
		return string(b), nil
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return "", err
	}
	return string(b), nil
}
