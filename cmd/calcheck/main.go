// Command calcheck decides concurrency-aware linearizability (or classical
// linearizability) of a history read from a file or stdin, against a named
// specification.
//
// Usage:
//
//	calcheck -spec exchanger -object E -mode cal history.txt
//	calcheck -spec stack -object S -mode lin < history.txt
//
// The history format is line-oriented:
//
//	inv t1 E.exchange 3
//	res t1 E.exchange (true,4)
//
// The check is resource-bounded: -timeout imposes a wall-clock deadline,
// -max-states and -memo-budget bound the search, and the process responds
// to interrupts (SIGINT/SIGTERM) by reporting how far the search got
// instead of dying mid-answer.
//
// Exit status: 0 when the history satisfies the property, 1 when it does
// not, 2 on usage or input errors, 3 when the check was cancelled or ran
// out of budget before reaching a verdict (UNKNOWN).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"calgo"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specName   = flag.String("spec", "exchanger", "specification: exchanger, elimarray, stack, central-stack, dual-stack, queue, syncqueue, register, snapshot")
		object     = flag.String("object", "E", "object identifier the spec constrains")
		threads    = flag.Int("threads", 4, "participant bound for -spec snapshot")
		mode       = flag.String("mode", "cal", "property: cal (concurrency-aware), lin (classical), setlin")
		verbose    = flag.Bool("v", false, "print the witness trace and search statistics")
		maxStats   = flag.Int("max-states", 4_000_000, "checker state budget")
		timeout    = flag.Duration("timeout", 0, "wall-clock deadline for the check (0 = none), e.g. 100ms, 30s")
		memoBudget = flag.Int("memo-budget", 0, "approximate memoization memory budget in bytes (0 = unlimited)")
	)
	flag.Parse()

	sp, err := specByName(*specName, calgo.ObjectID(*object), *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calcheck:", err)
		return 2
	}

	name, src, err := readInput(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "calcheck:", err)
		return 2
	}
	h, err := calgo.ParseHistoryFile(name, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calcheck:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var r calgo.Result
	opts := []calgo.CheckOption{calgo.WithMaxStates(*maxStats)}
	if *memoBudget > 0 {
		opts = append(opts, calgo.WithMemoBudget(*memoBudget))
	}
	switch *mode {
	case "cal":
		r, err = calgo.CALContext(ctx, h, sp, opts...)
	case "lin":
		r, err = calgo.LinearizableContext(ctx, h, sp, opts...)
	case "setlin":
		r, err = calgo.CALContext(ctx, h, sp, opts...)
	default:
		fmt.Fprintf(os.Stderr, "calcheck: unknown mode %q\n", *mode)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "calcheck:", err)
		return 2
	}

	if r.Verdict == calgo.VerdictUnknown {
		fmt.Printf("UNKNOWN: could not decide whether the history is %s w.r.t. %s\n",
			propertyName(*mode), sp.Name())
		fmt.Printf("cause: %s\n", r.Unknown.Reason)
		fmt.Printf("frontier: %s\n", r.Unknown.Frontier)
		if *verbose && len(r.Unknown.PartialWitness) > 0 {
			fmt.Printf("partial witness: %s\n", r.Unknown.PartialWitness)
		}
		return 3
	}
	if r.OK {
		fmt.Printf("OK: history is %s w.r.t. %s\n", propertyName(*mode), sp.Name())
		if *verbose {
			fmt.Printf("witness: %s\n", r.Witness)
			if len(r.Dropped) > 0 {
				fmt.Printf("dropped pending operations: %v\n", r.Dropped)
			}
			fmt.Printf("states explored: %d (memo hits %d)\n", r.States, r.MemoHits)
		}
		return 0
	}
	fmt.Printf("VIOLATION: history is not %s w.r.t. %s\n", propertyName(*mode), sp.Name())
	fmt.Println(r.Reason)
	if *verbose {
		fmt.Printf("states explored: %d (memo hits %d)\n", r.States, r.MemoHits)
	}
	return 1
}

func propertyName(mode string) string {
	switch mode {
	case "cal":
		return "CA-linearizable"
	case "lin":
		return "linearizable"
	default:
		return "set-linearizable"
	}
}

func specByName(name string, o calgo.ObjectID, threads int) (calgo.Spec, error) {
	switch name {
	case "exchanger":
		return calgo.NewExchangerSpec(o), nil
	case "elimarray":
		return calgo.NewElimArraySpec(o), nil
	case "stack":
		return calgo.NewStackSpec(o), nil
	case "central-stack":
		return calgo.NewCentralStackSpec(o), nil
	case "dual-stack":
		return calgo.NewDualStackSpec(o), nil
	case "snapshot":
		return calgo.NewSnapshotSpec(o, threads), nil
	case "queue":
		return calgo.NewQueueSpec(o), nil
	case "syncqueue":
		return calgo.NewSyncQueueSpec(o), nil
	case "register":
		return calgo.NewRegisterSpec(o), nil
	default:
		return nil, fmt.Errorf("unknown spec %q", name)
	}
}

// readInput returns the history source and a name for diagnostics.
func readInput(args []string) (name, src string, err error) {
	if len(args) == 0 {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", "", fmt.Errorf("reading stdin: %w", err)
		}
		return "<stdin>", string(b), nil
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return args[0], string(b), nil
}
