package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// resetFlagsForTest lets run() re-parse a fresh flag set per subtest.
func resetFlagsForTest(t *testing.T, args []string) {
	t.Helper()
	oldArgs := os.Args
	oldCmd := flag.CommandLine
	flag.CommandLine = flag.NewFlagSet("calcheck", flag.ExitOnError)
	os.Args = append([]string{"calcheck"}, args...)
	t.Cleanup(func() {
		os.Args = oldArgs
		flag.CommandLine = oldCmd
	})
}

func TestSpecByName(t *testing.T) {
	known := []string{"exchanger", "elimarray", "stack", "central-stack", "dual-stack", "queue", "syncqueue", "register", "snapshot"}
	for _, name := range known {
		sp, err := specByName(name, "O", 3)
		if err != nil {
			t.Errorf("specByName(%q): %v", name, err)
			continue
		}
		if sp.Object() != "O" {
			t.Errorf("specByName(%q).Object() = %q", name, sp.Object())
		}
	}
	if _, err := specByName("nonsense", "O", 3); err == nil {
		t.Error("unknown spec should fail")
	}
}

func TestPropertyName(t *testing.T) {
	tests := map[string]string{
		"cal":    "CA-linearizable",
		"lin":    "linearizable",
		"setlin": "set-linearizable",
	}
	for mode, want := range tests {
		if got := propertyName(mode); got != want {
			t.Errorf("propertyName(%q) = %q, want %q", mode, got, want)
		}
	}
}

func TestReadInputs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.txt")
	const content = "inv t1 E.exchange 3\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := readInputs([]string{path, path})
	if err != nil || len(got) != 2 || got[0].src != content || got[0].name != path {
		t.Errorf("readInputs = %v, %v", got, err)
	}
	if _, err := readInputs([]string{path, filepath.Join(dir, "missing.txt")}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestWorstExit(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 3, 3}, {3, 0, 3}, {0, 1, 1}, {3, 1, 1}, {1, 3, 1}, {1, 0, 1},
	}
	for _, tt := range tests {
		if got := worstExit(tt.a, tt.b); got != tt.want {
			t.Errorf("worstExit(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

// TestSampleHistories pins the verdicts promised by the files in
// examples/histories.
func TestSampleHistories(t *testing.T) {
	base := "../../examples/histories/"
	tests := []struct {
		file, spec, object, mode string
		want                     int
	}{
		{"fig3-h1.txt", "exchanger", "E", "cal", 0},
		{"fig3-h1.txt", "exchanger", "E", "lin", 1},
		{"fig3-h3.txt", "exchanger", "E", "cal", 1},
		{"fig3-h3.txt", "exchanger", "E", "lin", 1},
		{"stack-lifo.txt", "stack", "S", "cal", 0},
		{"stack-violation.txt", "stack", "S", "cal", 1},
		{"syncqueue-handoff.txt", "syncqueue", "SQ", "cal", 0},
		{"syncqueue-handoff.txt", "syncqueue", "SQ", "lin", 1},
	}
	for _, tt := range tests {
		t.Run(tt.file+"/"+tt.mode, func(t *testing.T) {
			resetFlagsForTest(t, []string{"-spec", tt.spec, "-object", tt.object, "-mode", tt.mode, base + tt.file})
			if got := run(); got != tt.want {
				t.Errorf("run() = %d, want %d", got, tt.want)
			}
		})
	}
}

// TestRunEndToEnd drives the full command (including exit codes) on
// temporary history files.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		return p
	}
	swap := write("swap.txt", strings.Join([]string{
		"inv t1 E.exchange 3",
		"inv t2 E.exchange 4",
		"res t1 E.exchange (true,4)",
		"res t2 E.exchange (true,3)",
	}, "\n"))
	loneSuccess := write("lone.txt", strings.Join([]string{
		"inv t1 E.exchange 3",
		"res t1 E.exchange (true,4)",
	}, "\n"))
	garbage := write("garbage.txt", "zap zap zap")

	tests := []struct {
		name string
		args []string
		want int
	}{
		{"swap is CAL", []string{"-spec", "exchanger", "-mode", "cal", "-v", swap}, 0},
		{"swap is not lin", []string{"-spec", "exchanger", "-mode", "lin", swap}, 1},
		{"swap is setlin", []string{"-spec", "exchanger", "-mode", "setlin", swap}, 0},
		{"lone success rejected", []string{"-spec", "exchanger", "-mode", "cal", "-v", loneSuccess}, 1},
		{"bad mode", []string{"-mode", "frob", swap}, 2},
		{"bad spec", []string{"-spec", "frob", swap}, 2},
		{"bad file", []string{"-spec", "exchanger", filepath.Join(dir, "nope.txt")}, 2},
		{"garbage input", []string{"-spec", "exchanger", garbage}, 2},
		{"batch all ok", []string{"-spec", "exchanger", "-workers", "2", swap, swap, swap}, 0},
		{"batch violation dominates", []string{"-spec", "exchanger", "-workers", "2", swap, loneSuccess, swap}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resetFlagsForTest(t, tt.args)
			if got := run(); got != tt.want {
				t.Errorf("run() = %d, want %d", got, tt.want)
			}
		})
	}
}

// TestUnknownExitCode pins the resilience contract: on the adversarial
// history (exponential subset enumeration at one node) a 100ms deadline
// must yield the three-valued UNKNOWN verdict and exit code 3, promptly.
func TestUnknownExitCode(t *testing.T) {
	adversarial := "../../examples/histories/snapshot-adversarial.txt"
	resetFlagsForTest(t, []string{
		"-spec", "snapshot", "-object", "IS", "-threads", "23",
		"-timeout", "100ms", "-v", adversarial,
	})
	start := time.Now()
	if got := run(); got != 3 {
		t.Errorf("run() = %d, want 3 (UNKNOWN)", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("took %v to honour a 100ms deadline", elapsed)
	}
	// Without a deadline but with a tiny state budget the same verdict
	// path triggers via ErrBound on a decidable history.
	resetFlagsForTest(t, []string{
		"-spec", "exchanger", "-object", "E", "-max-states", "1",
		"../../examples/histories/fig3-h1.txt",
	})
	if got := run(); got != 3 {
		t.Errorf("run() with -max-states 1 = %d, want 3", got)
	}
	// A memo budget of one byte trips on the first memoized failure.
	resetFlagsForTest(t, []string{
		"-spec", "exchanger", "-object", "E", "-mode", "lin", "-memo-budget", "1",
		"../../examples/histories/fig3-h1.txt",
	})
	if got := run(); got != 3 {
		t.Errorf("run() with -memo-budget 1 = %d, want 3", got)
	}
}
