package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"calgo"
	"calgo/internal/cliflags"
	"calgo/internal/obs"
)

// writeReportFixture saves a small calgo.report/v1 document and returns
// its path.
func writeReportFixture(t *testing.T, dir string) string {
	t.Helper()
	doc := calgo.NewReport("calcheck", time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC))
	doc.Exit = 1
	doc.Runs = []calgo.RunReport{{Name: "h.txt", Verdict: "VIOLATION", Detail: "no CA-trace agrees"}}
	path := filepath.Join(dir, "report.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestLoadReport(t *testing.T) {
	path := writeReportFixture(t, t.TempDir())
	doc, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Tool != "calcheck" || doc.Exit != 1 || len(doc.Runs) != 1 {
		t.Errorf("loaded report = %+v", doc)
	}
}

func TestLoadReportRejectsSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"something/v9","tool":"x"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch not rejected: %v", err)
	}
}

func TestLoadArgValidation(t *testing.T) {
	if _, err := load(nil, "", "", ""); err == nil {
		t.Error("no inputs should be a usage error")
	}
	if _, err := load([]string{"a.json"}, "m.json", "", ""); err == nil {
		t.Error("report file combined with -metrics should be a usage error")
	}
	if _, err := load([]string{"a.json", "b.json"}, "", "", ""); err == nil {
		t.Error("two report files should be a usage error")
	}
}

// TestAssemblePair: a saved -metrics-json document plus a -trace
// JSON-lines file round-trip into one report, with event kinds intact.
func TestAssemblePair(t *testing.T) {
	dir := t.TempDir()

	m := calgo.NewMetrics()
	m.Counter("check.states").Add(42)
	mdoc := cliflags.Report{Tool: "calcheck", ElapsedNS: 1000, Metrics: m.Snapshot()}
	mb, err := json.MarshalIndent(mdoc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	metricsPath := filepath.Join(dir, "m.json")
	if err := os.WriteFile(metricsPath, mb, 0o600); err != nil {
		t.Fatal(err)
	}

	events := []obs.Event{
		{Seq: 1, Kind: obs.EvSearchStart, Arg: 4},
		{Seq: 2, Kind: obs.EvNodeExpand, Depth: 1, Arg: 2},
		{Seq: 3, Kind: obs.EvSearchEnd, Depth: 0, Arg: 17, Verdict: "Unsat"},
	}
	var lines []string
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	tracePath := filepath.Join(dir, "t.jsonl")
	if err := os.WriteFile(tracePath, []byte(strings.Join(lines, "\n")+"\n\n"), 0o600); err != nil {
		t.Fatal(err)
	}

	doc, err := assemble(metricsPath, tracePath, "")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Tool != "calcheck" {
		t.Errorf("tool = %q, want the metrics document's tool", doc.Tool)
	}
	if doc.Metrics == nil || doc.Metrics.Counters["check.states"] != 42 {
		t.Errorf("metrics = %+v", doc.Metrics)
	}
	if doc.FlightTotal != 3 || len(doc.Flight) != 3 {
		t.Fatalf("flight = %d events, total %d", len(doc.Flight), doc.FlightTotal)
	}
	if doc.Flight[0].Kind != obs.EvSearchStart {
		t.Errorf("event kind did not round-trip: %v", doc.Flight[0].Kind)
	}
	if doc.Flight[2].Verdict != "Unsat" {
		t.Errorf("verdict did not round-trip: %q", doc.Flight[2].Verdict)
	}

	md := doc.Markdown()
	for _, want := range []string{"# calcheck run report", "check.states", "42", "SearchEnd", "assembled offline by calreport"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

// TestEmitRoundTrip: emitting to a .json path produces a document
// loadReport accepts; any other path gets Markdown.
func TestEmitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := writeReportFixture(t, dir)
	doc, err := loadReport(src)
	if err != nil {
		t.Fatal(err)
	}

	jsonOut := filepath.Join(dir, "out.json")
	if err := emit(doc, jsonOut); err != nil {
		t.Fatal(err)
	}
	re, err := loadReport(jsonOut)
	if err != nil {
		t.Fatalf("re-emitted JSON does not load: %v", err)
	}
	if re.Runs[0].Verdict != "VIOLATION" {
		t.Errorf("round-trip lost the run: %+v", re.Runs)
	}

	mdOut := filepath.Join(dir, "out.md")
	if err := emit(doc, mdOut); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(mdOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "# calcheck run report") || !strings.Contains(string(b), "VIOLATION") {
		t.Errorf("markdown output missing expected content:\n%s", b)
	}
}

func TestLoadTraceBadLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := os.WriteFile(path, []byte("{\"ev\":\"SearchStart\",\"seq\":1}\nnot json\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadTrace(path); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Errorf("bad line not reported with its line number: %v", err)
	}
}
