// Command calreport renders calgo.report/v1 run reports offline: it
// turns a saved report JSON — or a saved -metrics-json / -trace pair —
// into a self-contained Markdown document, without re-running any check.
//
// Usage:
//
//	calreport report.json                    # Markdown on stdout
//	calreport -o report.md report.json       # Markdown to a file
//	calreport -o report.json ...             # re-emit calgo.report/v1 JSON
//	calreport -metrics m.json -trace t.jsonl # assemble a report from a
//	                                         # saved metrics/flight pair
//	calreport -store DIR -query EXPR         # query a run-history store
//	calreport -store http://a:9,http://b:9 \
//	          -query "regressions top=5"     # fleet rollup across daemons
//
// -store points at a run-history store — a directory (as maintained by
// `cald -store` or `calbench -auto`), a daemon URL (http://host:port,
// speaking calgo.storeapi/v1), or a comma-separated list of either,
// which queries the whole fleet: results merge by time with an origin
// label per record, regressions re-rank worst-first across shards, and
// a down daemon degrades the answer (DEGRADED header + per-target
// errors) instead of failing it. -query asks the question in the
// shared query grammar — `runs tool=cald verdict=VIOLATION since=168h`
// lists matching records, `regressions table=B1 top=5` computes
// per-cell perf deltas between the two newest trajectory points (see
// EXPERIMENTS.md "Run-history store" and "Fleet observability"). -o
// renders the result as an aligned table (stdout), calgo.query/v1 JSON
// (.json) or Markdown (anything else).
//
// The positional argument must be a calgo.report/v1 document as written
// by any calgo CLI's -report flag. Alternatively -metrics takes a
// -metrics-json document and -trace a -trace JSON-lines file; calreport
// stitches the two into a fresh report (the metrics snapshot becomes the
// report's metrics section, the trace events its flight-recorder tail).
//
// With -serve the loaded report is additionally published on the shared
// ops endpoint (/runsz, with its metrics snapshot on /metrics), kept up
// for -serve-linger — a quick way to point a browser or a Prometheus
// scrape at a saved run:
//
//	calreport -serve :8080 -serve-linger 10m report.json
//
// Exit status: 0 on success, 2 on usage or input errors (including a
// schema mismatch).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"calgo"
	"calgo/internal/cliflags"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		metricsPath = flag.String("metrics", "", "assemble from this saved -metrics-json document")
		tracePath   = flag.String("trace", "", "assemble from this saved -trace JSON-lines file (the events become the flight-recorder tail)")
		tool        = flag.String("tool", "", "tool name to stamp on an assembled report (default: the metrics document's tool)")
		out         = flag.String("o", "-", "output path; \"-\" = stdout, a .json path re-emits calgo.report/v1 JSON, anything else renders Markdown")
		storeSpec   = flag.String("store", "", "query a run-history store instead of rendering a report file: a directory (as maintained by cald -store or calbench -auto), a daemon URL (http://host:port), or a comma-separated fleet of either")
		queryExpr   = flag.String("query", "", "with -store: the query expression — e.g. 'runs tool=cald verdict=VIOLATION since=168h' or 'regressions table=B1 top=5' (default: list every record)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: calreport [flags] [report.json]\n")
		flag.PrintDefaults()
	}
	shared := cliflags.RegisterOps("calreport")
	flag.Parse()

	if *storeSpec != "" {
		if err := runQuery(*storeSpec, *queryExpr, *out, shared); err != nil {
			shared.Logger().Error("querying run store", "err", err)
			return 2
		}
		return 0
	}
	if *queryExpr != "" {
		shared.Logger().Error("-query needs -store", "query", *queryExpr)
		return 2
	}

	doc, err := load(flag.Args(), *metricsPath, *tracePath, *tool)
	if err != nil {
		shared.Logger().Error("loading report", "err", err)
		return 2
	}
	if err := shared.Start(); err != nil {
		shared.Logger().Error("startup failed", "err", err)
		return 2
	}
	defer shared.Close()
	if err := emit(doc, *out); err != nil {
		shared.Logger().Error("writing output", "err", err)
		return 2
	}
	if ops := shared.Ops(); ops != nil {
		// Replay the saved run on the live endpoint: the document on
		// /runsz, its metrics snapshot already backing /metrics would need
		// a live registry — instead surface the headline facts as notes.
		ops.AddReport(doc)
		if m := shared.Metrics(); m != nil && doc.Metrics != nil {
			importSnapshot(m, doc.Metrics)
		}
		shared.Live().SetPhase("done")
		if shared.LingerDuration() <= 0 {
			shared.Logger().Warn("ops server exits with the process; set -serve-linger to keep it up")
		}
	}
	return 0
}

// runQuery answers a -query expression over a run-history store (a
// directory, a daemon URL, or a comma-separated fleet of either): the
// result goes to stdout as an aligned table, to a .json path as the
// calgo.query/v1 document, or to any other path as Markdown.
func runQuery(spec, expr, out string, shared *cliflags.Set) error {
	st, err := calgo.OpenRunStores(spec, calgo.FSStoreOptions{},
		calgo.FederatedStoreOptions{Logger: shared.Logger()})
	if err != nil {
		return err
	}
	defer st.Close()
	// A plain local directory additionally ingests committed
	// BENCH_*.json files beside the store on first sight (idempotent),
	// so a directory of trajectory files is queryable with no prior
	// bookkeeping run. Remote and federated specs skip this: daemons
	// own their stores, and the federated view is read-only.
	if !strings.Contains(spec, ",") && !calgo.IsRunStoreURL(spec) {
		if _, err := calgo.IngestBenchFiles(st, spec, nil); err != nil {
			return err
		}
	}
	q, err := calgo.ParseRunQuery(expr, time.Now())
	if err != nil {
		return err
	}
	res, err := calgo.RunQueryOnContext(context.Background(), st, q)
	if err != nil {
		return err
	}
	switch {
	case out == "-":
		_, err := os.Stdout.WriteString(res.Text())
		return err
	case strings.HasSuffix(out, ".json"):
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(out, append(b, '\n'), 0o644)
	default:
		return os.WriteFile(out, []byte(res.Markdown()), 0o644)
	}
}

// importSnapshot replays a saved metrics snapshot into a live registry,
// so /metrics serves the saved run's counters and gauges. Histograms
// are replayed as count observations preserving the exact sum (the
// registry re-buckets, so bucket shapes are approximate) — but only up
// to a bound, since a saved run may hold millions of observations.
func importSnapshot(m *calgo.Metrics, s *calgo.MetricsSnapshot) {
	const maxReplay = 1 << 16
	for name, v := range s.Counters {
		m.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		m.Gauge(name).Set(v)
	}
	for name, h := range s.Histograms {
		if h.Count <= 0 || h.Count > maxReplay {
			continue
		}
		hist := m.Histogram(name)
		avg := h.Sum / h.Count
		for i := int64(0); i < h.Count-1; i++ {
			hist.Observe(avg)
		}
		hist.Observe(h.Sum - avg*(h.Count-1))
	}
}

// load produces the report to render: either a saved calgo.report/v1
// document (one positional argument) or one assembled from a saved
// metrics/flight pair (-metrics / -trace).
func load(args []string, metricsPath, tracePath, tool string) (*calgo.Report, error) {
	switch {
	case len(args) > 1:
		return nil, fmt.Errorf("at most one report file, got %d", len(args))
	case len(args) == 1 && (metricsPath != "" || tracePath != ""):
		return nil, fmt.Errorf("give either a report file or -metrics/-trace, not both")
	case len(args) == 1:
		return loadReport(args[0])
	case metricsPath == "" && tracePath == "":
		return nil, fmt.Errorf("nothing to render: give a report file or -metrics/-trace (see -h)")
	}
	return assemble(metricsPath, tracePath, tool)
}

// loadReport reads and validates a saved calgo.report/v1 document.
func loadReport(path string) (*calgo.Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc calgo.Report
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != calgo.ReportSchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, calgo.ReportSchemaVersion)
	}
	return &doc, nil
}

// assemble builds a fresh report from a saved -metrics-json document
// and/or a -trace JSON-lines file.
func assemble(metricsPath, tracePath, tool string) (*calgo.Report, error) {
	if tool == "" {
		tool = "calreport"
	}
	var sources []string
	var doc *calgo.Report

	if metricsPath != "" {
		b, err := os.ReadFile(metricsPath)
		if err != nil {
			return nil, err
		}
		var m cliflags.Report
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, fmt.Errorf("%s: %w", metricsPath, err)
		}
		if m.Tool != "" && tool == "calreport" {
			tool = m.Tool
		}
		doc = calgo.NewReport(tool, time.Now())
		doc.ElapsedNS = m.ElapsedNS
		snap := m.Metrics
		doc.Metrics = &snap
		sources = append(sources, fmt.Sprintf("metrics from %s", metricsPath))
	} else {
		doc = calgo.NewReport(tool, time.Now())
	}

	if tracePath != "" {
		events, total, err := loadTrace(tracePath)
		if err != nil {
			return nil, err
		}
		doc.Flight = events
		doc.FlightTotal = total
		sources = append(sources, fmt.Sprintf("%d trace events from %s", total, tracePath))
	}

	doc.Notes = append(doc.Notes, "assembled offline by calreport: "+strings.Join(sources, ", "))
	return doc, nil
}

// loadTrace parses a -trace JSON-lines file, keeping the last
// cliflags.FlightEvents events — the same tail a live flight recorder
// would retain.
func loadTrace(path string) ([]calgo.TraceEvent, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	var events []calgo.TraceEvent
	var total uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev calgo.TraceEvent
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, 0, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		total++
		events = append(events, ev)
		if len(events) > cliflags.FlightEvents {
			events = events[1:]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return events, total, nil
}

// emit writes the report to out: "-" renders Markdown on stdout, a
// .json path re-emits the JSON document, anything else gets Markdown.
func emit(doc *calgo.Report, out string) error {
	if out == "-" {
		_, err := os.Stdout.WriteString(doc.Markdown())
		return err
	}
	if strings.HasSuffix(out, ".json") {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := doc.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return os.WriteFile(out, []byte(doc.Markdown()), 0o644)
}
