package calgo

import (
	"calgo/internal/obs/serve"
)

// Embedded HTTP ops server: a live window into a running check or
// exploration. Construct with NewOpsServer over the process's Metrics /
// FlightRecorder / LiveRun, then Start (or mount Handler); the server
// answers /metrics (Prometheus text exposition), /statusz (live run
// status as JSON, HTML or an SSE stream), /flightz (flight-recorder
// ring) and /runsz (completed run reports), with /debug/ delegating to
// the process-wide pprof/expvar mux. The CLIs expose it via -serve.
type (
	// OpsServer is the embedded ops endpoint.
	OpsServer = serve.Server
	// OpsConfig wires an OpsServer to the observability instruments; any
	// field may be nil and the endpoints degrade gracefully.
	OpsConfig = serve.Config
	// Statusz is the /statusz JSON document (schema StatuszSchemaVersion).
	Statusz = serve.Statusz
)

// StatuszSchemaVersion identifies the /statusz JSON document shape.
const StatuszSchemaVersion = serve.StatuszSchema

var (
	// NewOpsServer returns an unstarted ops server over the instruments.
	NewOpsServer = serve.New
	// WritePrometheus renders a metrics snapshot in the Prometheus text
	// exposition format (version 0.0.4), exactly as /metrics serves it.
	WritePrometheus = serve.WritePrometheus
)
