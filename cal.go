// Package calgo is a library for specifying and verifying
// concurrency-aware linearizability (CAL), reproducing "Brief announcement:
// Concurrency-aware linearizability" (Hemed & Rinetzky, PODC 2014) and its
// full version "Modular Verification of Concurrency-Aware Linearizability"
// (Hemed, Rinetzky & Vafeiadis).
//
// Linearizability explains every concurrent execution by a sequence of
// instantaneous operations. Concurrency-aware objects — exchangers,
// synchronous queues, elimination layers — cannot be specified that way:
// some of their operations must "seem to take effect simultaneously". CAL
// generalizes linearizability by explaining executions with CA-traces,
// sequences of sets of overlapping operations.
//
// The package is a facade re-exporting the library's layers:
//
//   - histories and object actions (Definitions 1-3);
//   - CA-traces and the agreement relation H ⊑CAL T (Definitions 4-5);
//   - CA-specifications as state machines over CA-elements, with the
//     paper's exchanger, elimination array, stack WFS, synchronous queue,
//     plus FIFO queue and register specs (§4);
//   - the CAL decision procedure (Definition 6), with classical
//     linearizability and set-linearizability as special cases;
//   - the auxiliary trace recorder with per-object view functions F_o and
//     their composition F̂_o (§4);
//   - real lock-free implementations of the paper's objects under
//     calgo/internal/objects, re-exported through objects.go;
//   - an exhaustive model checker discharging the §5 proof obligations
//     (calgo/internal/{model,sched,rg}).
//
// See the examples directory for runnable walkthroughs and EXPERIMENTS.md
// for the paper-artifact index.
package calgo

import (
	"context"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// Core history types (Definitions 1-3).
type (
	// ThreadID identifies a client thread.
	ThreadID = history.ThreadID
	// ObjectID identifies a concurrent object.
	ObjectID = history.ObjectID
	// Method names an object method.
	Method = history.Method
	// Value is an argument or return value.
	Value = history.Value
	// ValueKind discriminates a Value's payload.
	ValueKind = history.ValueKind
	// Event is an invocation or response action.
	Event = history.Event
	// History is a finite sequence of actions.
	History = history.History
	// Op is an operation (an invocation paired with its response).
	Op = history.Op
	// Capture records the observable history of a concurrent run.
	Capture = history.Capture
)

// ValueKind values, for callers inspecting Value.Kind.
const (
	KindUnit = history.KindUnit
	KindBool = history.KindBool
	KindInt  = history.KindInt
	KindPair = history.KindPair
)

// Value constructors.
var (
	// Unit returns the unit value.
	Unit = history.Unit
	// Bool returns a boolean value.
	Bool = history.Bool
	// Int returns an integer value.
	Int = history.Int
	// Pair returns a (bool, int) pair value.
	Pair = history.Pair
	// Inv constructs an invocation action.
	Inv = history.Inv
	// Res constructs a response action.
	Res = history.Res
	// ParseHistory reads the line-oriented history interchange format.
	ParseHistory = history.Parse
	// ParseHistoryFile is ParseHistory with a source name for file:line
	// diagnostics; errors are *HistorySyntaxError values.
	ParseHistoryFile = history.ParseFile
	// FormatHistory renders a history in the interchange format.
	FormatHistory = history.Format
)

// CA-trace types (Definitions 4-5).
type (
	// Operation is a completed operation (t, f(n) ▷ n').
	Operation = trace.Operation
	// Element is a CA-element: a set of overlapping operations of one
	// object.
	Element = trace.Element
	// Trace is a CA-trace: a sequence of CA-elements.
	Trace = trace.Trace
)

var (
	// NewElement builds a canonical CA-element.
	NewElement = trace.NewElement
	// Singleton builds a one-operation CA-element.
	Singleton = trace.Singleton
	// Agrees decides the agreement relation H ⊑CAL T (Definition 5).
	Agrees = trace.Agrees
)

// Specification types (§4).
type (
	// Spec is a concurrency-aware specification: a prefix-closed set of
	// CA-traces presented as a state machine over CA-elements.
	Spec = spec.Spec
	// SpecState is a specification state.
	SpecState = spec.State
)

var (
	// NewExchangerSpec returns the exchanger CA-specification.
	NewExchangerSpec = spec.NewExchanger
	// NewElimArraySpec returns the elimination array specification (the
	// same as a single exchanger's).
	NewElimArraySpec = spec.NewElimArray
	// NewStackSpec returns the sequential stack specification WFS.
	NewStackSpec = spec.NewStack
	// NewCentralStackSpec returns the one-shot central stack spec, whose
	// operations may fail under contention.
	NewCentralStackSpec = spec.NewCentralStack
	// NewQueueSpec returns the sequential FIFO queue specification.
	NewQueueSpec = spec.NewQueue
	// NewSetSpec returns the sequential integer-set specification.
	NewSetSpec = spec.NewSet
	// NewPQueueSpec returns the sequential min-priority-queue
	// specification.
	NewPQueueSpec = spec.NewPQueue
	// NewSyncQueueSpec returns the synchronous queue CA-specification.
	NewSyncQueueSpec = spec.NewSyncQueue
	// NewRegisterSpec returns the atomic register specification.
	NewRegisterSpec = spec.NewRegister
	// NewDualStackSpec returns the dual stack CA-specification (§6): a
	// push fulfilling a waiting pop is one CA-element.
	NewDualStackSpec = spec.NewDualStack
	// NewDualQueueSpec returns the dual queue CA-specification (§6):
	// fulfilments are single CA-elements, admitted only on the empty
	// queue (FIFO).
	NewDualQueueSpec = spec.NewDualQueue
	// NewSnapshotSpec returns the immediate atomic snapshot
	// CA-specification (Neiger's set-linearizability example, §6), with
	// CA-elements of size up to n.
	NewSnapshotSpec = spec.NewSnapshot
	// NewProductSpec composes specifications of disjoint objects.
	NewProductSpec = spec.NewProduct
	// SpecAccepts runs a trace through a specification.
	SpecAccepts = spec.Accepts
)

// Checking (Definition 6).
type (
	// Result reports a checker verdict with witness or reason.
	Result = check.Result
	// Checker is a reusable, configured decision procedure: build it once
	// with NewChecker, then call Check or CheckMany against any number of
	// histories. Safe for concurrent use.
	Checker = check.Checker
	// CheckOption is the engine-level checker option type.
	//
	// Deprecated: facade callers use Option, which the facade's
	// constructors (WithElementCap, WithMaxStates, ...) return.
	CheckOption = check.Option
	// Verdict is the three-valued checking outcome: Sat, Unsat or Unknown.
	Verdict = check.Verdict
	// UnknownInfo explains an Unknown verdict: abort cause, frontier
	// statistics and partial witness.
	UnknownInfo = check.UnknownInfo
	// Frontier summarizes how far an interrupted search got.
	Frontier = check.Frontier
	// Engine selects the checker's decision procedure; see WithEngine.
	Engine = check.Engine
)

// Engine values for WithEngine.
const (
	// EngineDFS always runs the memoized parallel search (the default).
	EngineDFS = check.EngineDFS
	// EngineAuto dispatches unambiguous collection histories to the
	// log-linear specialized monitors, falling back to the DFS.
	EngineAuto = check.EngineAuto
	// EngineMonitor forces the specialized monitor; undecidable histories
	// yield VerdictUnknown with cause ErrMonitorIneligible.
	EngineMonitor = check.EngineMonitor
)

// ParseEngine parses an -engine flag value ("dfs", "auto" or "monitor").
var ParseEngine = check.ParseEngine

// Verdict values.
const (
	// VerdictUnsat: the search space was exhausted with no witness.
	VerdictUnsat = check.Unsat
	// VerdictSat: a witness CA-trace was found.
	VerdictSat = check.Sat
	// VerdictUnknown: the search was cancelled or ran out of budget.
	VerdictUnknown = check.Unknown
)

// CAL decides whether h is concurrency-aware linearizable with respect
// to sp. The context cancels the search cooperatively: cancellation and
// deadline expiry yield VerdictUnknown instead of hanging, as does
// exhausting a state or memory budget. The returned error is non-nil
// only for input errors: an ill-formed history, invalid options, or an
// option that does not apply to checkers.
//
// Checking many histories against one specification? Build a Checker
// once with NewChecker instead of re-resolving options per call.
func CAL(ctx context.Context, h History, sp Spec, opts ...Option) (Result, error) {
	co, err := checkOptions(opts)
	if err != nil {
		return Result{}, err
	}
	return check.CAL(ctx, h, sp, co...)
}

// Linearizable decides classical linearizability (Herlihy & Wing): CAL
// restricted to singleton CA-elements.
func Linearizable(ctx context.Context, h History, sp Spec, opts ...Option) (Result, error) {
	return CAL(ctx, h, sp, append(opts, WithElementCap(1))...)
}

// SetLinearizable decides set-linearizability (Neiger 1994).
func SetLinearizable(ctx context.Context, h History, sp Spec, opts ...Option) (Result, error) {
	co, err := checkOptions(opts)
	if err != nil {
		return Result{}, err
	}
	return check.SetLinearizable(ctx, h, sp, co...)
}

// NewChecker validates opts against sp once and returns a reusable
// Checker: Check decides one history, CheckMany fans a batch across a
// worker pool (WithParallelism). CheckMany, calfuzz and the chaos soak
// all go through this one construction path.
func NewChecker(sp Spec, opts ...Option) (*Checker, error) {
	co, err := checkOptions(opts)
	if err != nil {
		return nil, err
	}
	return check.NewChecker(sp, co...)
}

// CheckMany decides a batch of histories against one specification,
// fanning the per-history checks across a worker pool. Shorthand for
// NewChecker followed by Checker.CheckMany.
func CheckMany(ctx context.Context, histories []History, sp Spec, opts ...Option) ([]Result, error) {
	c, err := NewChecker(sp, opts...)
	if err != nil {
		return nil, err
	}
	return c.CheckMany(ctx, histories)
}

// Budget-exhaustion causes carried by Unknown verdicts.
var (
	// ErrCheckBound is the Unknown cause for an exceeded state budget.
	ErrCheckBound = check.ErrBound
	// ErrCheckMemoBudget is the Unknown cause for an exceeded memo budget.
	ErrCheckMemoBudget = check.ErrMemoBudget
	// ErrMonitorIneligible is the Unknown cause when EngineMonitor is
	// forced on a history the specialized monitors cannot decide.
	ErrMonitorIneligible = check.ErrMonitorIneligible
)

// Recording (§4): the auxiliary trace 𝒯 and object views F_o.
type (
	// Recorder is the global auxiliary CA-trace with per-object views.
	Recorder = recorder.Recorder
	// ViewFunc is a view function F_o from subobject CA-elements to
	// owner CA-traces.
	ViewFunc = recorder.ViewFunc
)

var (
	// NewRecorder returns an empty, unbounded Recorder.
	NewRecorder = recorder.New
	// NewBoundedRecorder returns a Recorder that holds at most capacity
	// elements; overflow is detected via Recorder.Err.
	NewBoundedRecorder = recorder.NewBounded
)

// RecorderOverflowError reports that a bounded recorder dropped elements;
// the truncated trace must not be used as verification evidence.
type RecorderOverflowError = recorder.OverflowError

// HistorySyntaxError reports a malformed history line with its file:line
// position.
type HistorySyntaxError = history.SyntaxError
