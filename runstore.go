package calgo

import (
	"calgo/internal/runstore"
)

// Run-history store: every completed check, stream verdict and bench
// trajectory point as a queryable record. The store interface has two
// backends — a bounded in-memory ring (the serve default) and a durable
// append-only filesystem journal with crash-safe replay — and a small
// query engine over them (label selectors, time ranges, per-cell bench
// regressions against a baseline). The CLIs expose it via -store and
// the ops server serves it on /runsz and /queryz.
type (
	// RunRecord is one calgo.run/v1 record: a report or bench document
	// plus the first-class labels (tool, kind, verdict, time) and any
	// free-form labels the producer attached.
	RunRecord = runstore.Record
	// RunStore is the storage interface both backends implement.
	RunStore = runstore.Store
	// RunFilter selects records by id, tool, verdict, kind, labels and
	// time range.
	RunFilter = runstore.Filter
	// RunQuery is a parsed query (runs listing or bench regressions).
	RunQuery = runstore.Query
	// QueryResult is the calgo.query/v1 result document.
	QueryResult = runstore.Result
	// BenchDoc is the BENCH_<date>.json perf-trajectory document.
	BenchDoc = runstore.Bench
	// BenchCellDelta is one per-cell regression of a bench comparison.
	BenchCellDelta = runstore.CellDelta
	// FSStoreOptions configures OpenFSStore.
	FSStoreOptions = runstore.FSOptions

	// RemoteStore is a Store client over the calgo.storeapi/v1 HTTP
	// protocol — any cald daemon is a backend.
	RemoteStore = runstore.Remote
	// RemoteStoreOptions configures OpenRemoteStore (transport, retry
	// policy, per-operation deadline).
	RemoteStoreOptions = runstore.RemoteOptions
	// FederatedStore fans queries out over N store targets, merging by
	// time with origin labels and degrading honestly when shards fail.
	FederatedStore = runstore.Federated
	// FederatedStoreOptions configures NewFederatedStore (per-target
	// deadline, logger).
	FederatedStoreOptions = runstore.FederatedOptions
	// RunStoreTarget is one federation member (name + store).
	RunStoreTarget = runstore.StoreTarget
	// StoreTargetResult is one target's contribution (or error) in a
	// fleet query result.
	StoreTargetResult = runstore.TargetResult
	// RetentionPolicy bounds a store beyond superseded-record GC:
	// max-age, max-records, per-kind keep-N.
	RetentionPolicy = runstore.Retention
)

// Schema identifiers of the store's JSON documents.
const (
	// RunRecordSchemaVersion identifies the run-record document shape.
	RunRecordSchemaVersion = runstore.RecordSchema
	// QuerySchemaVersion identifies the query-result document shape.
	QuerySchemaVersion = runstore.QuerySchema
	// StoreAPISchemaVersion identifies the remote-store HTTP protocol
	// every ops server mounts under /storeapi/.
	StoreAPISchemaVersion = runstore.StoreAPISchema
)

var (
	// NewRingStore returns a bounded in-memory store that evicts oldest
	// records past capacity (counting evictions in the metrics registry).
	NewRingStore = runstore.NewRing
	// OpenFSStore opens (creating if needed) a durable store rooted at a
	// directory of append-only JSON-lines segments.
	OpenFSStore = runstore.OpenFS
	// ParseRunQuery parses the query expression grammar shared by
	// calreport -query and /queryz.
	ParseRunQuery = runstore.ParseQuery
	// RunQueryOn executes a query against a store.
	RunQueryOn = runstore.Run
	// LatestRun returns the newest record matching a filter.
	LatestRun = runstore.Latest
	// IngestBenchFiles imports a directory's BENCH_*.json trajectory
	// files into a store under deterministic IDs (idempotent).
	IngestBenchFiles = runstore.IngestBenchDir
	// OpenRemoteStore returns a store client for the daemon at a base
	// URL, speaking calgo.storeapi/v1 with jittered retries and
	// context deadlines.
	OpenRemoteStore = runstore.OpenRemote
	// NewFederatedStore returns a read-only fan-out view over targets.
	NewFederatedStore = runstore.NewFederated
	// OpenRunStores opens a -store spec: a directory, a daemon URL, or
	// a comma-separated list of either (a federation).
	OpenRunStores = runstore.OpenStores
	// IsRunStoreURL reports whether a -store spec element is a daemon
	// URL rather than a directory.
	IsRunStoreURL = runstore.IsStoreURL
	// RunQueryOnContext executes a query with cancellation, delegating
	// to remote/federated query engines when the store has one.
	RunQueryOnContext = runstore.RunContext
)
