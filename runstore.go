package calgo

import (
	"calgo/internal/runstore"
)

// Run-history store: every completed check, stream verdict and bench
// trajectory point as a queryable record. The store interface has two
// backends — a bounded in-memory ring (the serve default) and a durable
// append-only filesystem journal with crash-safe replay — and a small
// query engine over them (label selectors, time ranges, per-cell bench
// regressions against a baseline). The CLIs expose it via -store and
// the ops server serves it on /runsz and /queryz.
type (
	// RunRecord is one calgo.run/v1 record: a report or bench document
	// plus the first-class labels (tool, kind, verdict, time) and any
	// free-form labels the producer attached.
	RunRecord = runstore.Record
	// RunStore is the storage interface both backends implement.
	RunStore = runstore.Store
	// RunFilter selects records by id, tool, verdict, kind, labels and
	// time range.
	RunFilter = runstore.Filter
	// RunQuery is a parsed query (runs listing or bench regressions).
	RunQuery = runstore.Query
	// QueryResult is the calgo.query/v1 result document.
	QueryResult = runstore.Result
	// BenchDoc is the BENCH_<date>.json perf-trajectory document.
	BenchDoc = runstore.Bench
	// BenchCellDelta is one per-cell regression of a bench comparison.
	BenchCellDelta = runstore.CellDelta
	// FSStoreOptions configures OpenFSStore.
	FSStoreOptions = runstore.FSOptions
)

// Schema identifiers of the store's JSON documents.
const (
	// RunRecordSchemaVersion identifies the run-record document shape.
	RunRecordSchemaVersion = runstore.RecordSchema
	// QuerySchemaVersion identifies the query-result document shape.
	QuerySchemaVersion = runstore.QuerySchema
)

var (
	// NewRingStore returns a bounded in-memory store that evicts oldest
	// records past capacity (counting evictions in the metrics registry).
	NewRingStore = runstore.NewRing
	// OpenFSStore opens (creating if needed) a durable store rooted at a
	// directory of append-only JSON-lines segments.
	OpenFSStore = runstore.OpenFS
	// ParseRunQuery parses the query expression grammar shared by
	// calreport -query and /queryz.
	ParseRunQuery = runstore.ParseQuery
	// RunQueryOn executes a query against a store.
	RunQueryOn = runstore.Run
	// LatestRun returns the newest record matching a filter.
	LatestRun = runstore.Latest
	// IngestBenchFiles imports a directory's BENCH_*.json trajectory
	// files into a store under deterministic IDs (idempotent).
	IngestBenchFiles = runstore.IngestBenchDir
)
