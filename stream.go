package calgo

import (
	"calgo/internal/stream"
)

// Streaming/online checking: feed events as they are observed, poll the
// verdict at any time. Linearizability is closed under event prefixes,
// so "VIOLATION-at-event-k" is sound the moment it is reported and final
// for the whole stream; Sat-so-far and Unknown-degraded report what the
// checker still knows. See the package documentation of
// calgo/internal/stream for the engine design.
type (
	// Stream is an online checker over an unbounded event stream. Build
	// one with NewStream, then Feed/FeedAll events, poll Verdict, and
	// Close to run end-of-stream checks. Safe for concurrent use.
	Stream = stream.Stream
	// StreamVerdict is a point-in-time streaming verdict snapshot; its
	// MarshalJSON emits a calgo.stream/v1 verdict-frame payload.
	StreamVerdict = stream.Verdict
	// StreamStatus is the three-valued streaming verdict: sat-so-far,
	// violation, or unknown-degraded.
	StreamStatus = stream.Status
	// StreamEngine selects the per-object streaming decision path; see
	// WithStreamEngine.
	StreamEngine = stream.Engine
)

// StreamStatus values.
const (
	// StreamSatSoFar: every check run so far passed.
	StreamSatSoFar = stream.SatSoFar
	// StreamViolation: the prefix through Verdict.AtEvent is not
	// linearizable; sticky and final for every extension.
	StreamViolation = stream.Violation
	// StreamDegraded: the checker can no longer decide (window exceeded,
	// unambiguous fragment left after the fallback buffer was shed, or
	// cancellation) and says so instead of guessing.
	StreamDegraded = stream.Degraded
)

// StreamEngine values for WithStreamEngine.
const (
	// StreamEngineAuto (the default) routes monitored element-size-1
	// specs through incremental steppers, falling back to windowed DFS
	// re-checking.
	StreamEngineAuto = stream.EngineAuto
	// StreamEngineDFS forces windowed DFS re-checking.
	StreamEngineDFS = stream.EngineDFS
	// StreamEngineMonitor forces incremental steppers and degrades
	// instead of falling back.
	StreamEngineMonitor = stream.EngineMonitor
)

// Stream configuration defaults (see WithStreamWindow and
// WithStreamCheckEvery).
const (
	DefaultStreamWindow     = stream.DefaultWindow
	DefaultStreamCheckEvery = stream.DefaultCheckEvery
)

// ErrStreamClosed is returned by Stream.Feed after Close.
var ErrStreamClosed = stream.ErrClosed

// ParseStreamEngine parses a -stream-engine flag value ("auto", "dfs" or
// "monitor").
var ParseStreamEngine = stream.ParseEngine

// NewStream builds an online checker deciding sp over a growing event
// stream. Product specifications are demultiplexed into one incremental
// engine per component object. Options: WithStreamWindow,
// WithStreamCheckEvery, WithStreamEngine, WithStreamContext, plus any
// checker option (WithMaxStates, WithMemoBudget, WithMetrics, ...) to
// configure the embedded fallback re-checker.
//
// The streaming verdict agrees with CAL(..., WithElementCap(1)) on every
// fed prefix: Sat-so-far/Sat where the batch verdict is Sat,
// VIOLATION-at-event-k where it is Unsat (k the exact event for
// incremental engines, the detecting re-check boundary otherwise), and
// Unknown-degraded only where the stream exceeded a declared capacity.
func NewStream(sp Spec, opts ...Option) (*Stream, error) {
	cfg, err := streamOptions(opts)
	if err != nil {
		return nil, err
	}
	return stream.New(sp, cfg)
}
