GO ?= go

.PHONY: build test race chaos fuzz vet fmt ci

build:
	$(GO) build ./...

# Default suite: everything except the tag-gated extended soak.
test:
	$(GO) test ./...

# Race-detector pass over the quick suite (-short skips the exhaustive
# model explorations, which are minutes-long even without -race).
race:
	$(GO) test -race -short ./...

# Extended chaos soak: the full policy x object fault-injection matrix,
# iterated over rotating seeds. See EXPERIMENTS.md (R1).
chaos:
	$(GO) test -count=1 -tags chaos -run TestSoakLong -v ./internal/chaos/

# Parser robustness fuzzing (bounded; CI-friendly).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParseHistory -fuzztime=30s ./internal/history/

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

ci:
	./ci.sh
