#!/bin/sh
# ci.sh — the repo's single verification gate (ROADMAP tier-1 and more):
# formatting, vet, build, the default test suite, and a race-detector
# pass. The extended chaos soak is tag-gated (make chaos) and not part of
# this gate; the race pass uses -short to skip the exhaustive model
# explorations, which dominate runtime even without the race detector.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race -short ./... =="
go test -race -short ./...

# The parallel engine and the batch checker are the two packages whose
# correctness depends on cross-goroutine coordination; run their full
# (non-short) suites under the race detector.
echo "== go test -race ./internal/sched/ ./internal/check/ =="
go test -race ./internal/sched/ ./internal/check/

# Smoke the CLI path of the work-stealing engine: the F1 exchanger
# battery at full parallelism must verify cleanly (exit 0).
echo "== calexplore -parallel smoke =="
workers=$( (nproc || echo 4) 2>/dev/null )
if go run ./cmd/calexplore -target exchanger -values 3,4,7 -parallel "$workers"; then
    echo "calexplore -parallel $workers: OK"
else
    echo "calexplore -parallel $workers failed" >&2
    exit 1
fi

echo "CI gate passed."
