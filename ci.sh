#!/bin/sh
# ci.sh — the repo's single verification gate (ROADMAP tier-1 and more):
# formatting, vet, build, the default test suite, and a race-detector
# pass. The extended chaos soak is tag-gated (make chaos) and not part of
# this gate; the race pass uses -short to skip the exhaustive model
# explorations, which dominate runtime even without the race detector.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race -short ./... =="
go test -race -short ./...

echo "CI gate passed."
