#!/bin/sh
# ci.sh — the repo's single verification gate (ROADMAP tier-1 and more):
# formatting, vet, build, the default test suite, and a race-detector
# pass. The extended chaos soak is tag-gated (make chaos) and not part of
# this gate; the race pass uses -short to skip the exhaustive model
# explorations, which dominate runtime even without the race detector.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race -short ./... =="
go test -race -short ./...

# The parallel engine and the batch checker are the two packages whose
# correctness depends on cross-goroutine coordination; run their full
# (non-short) suites under the race detector.
echo "== go test -race ./internal/sched/ ./internal/check/ =="
go test -race ./internal/sched/ ./internal/check/

# Smoke the CLI path of the work-stealing engine: the F1 exchanger
# battery at full parallelism must verify cleanly (exit 0). -parallel is
# the deprecated alias of -workers and must keep working.
echo "== calexplore -parallel smoke =="
workers=$( (nproc || echo 4) 2>/dev/null )
if go run ./cmd/calexplore -target exchanger -values 3,4,7 -parallel "$workers"; then
    echo "calexplore -parallel $workers: OK"
else
    echo "calexplore -parallel $workers failed" >&2
    exit 1
fi

# Smoke the observability path: calcheck -metrics-json must emit a valid
# calgo.metrics/v1 document with the core search counters, and -trace
# must dump a non-empty flight-recorder ring on a VIOLATION.
echo "== calcheck -metrics-json smoke =="
metrics_out=$(go run ./cmd/calcheck -metrics-json - -spec exchanger -mode cal examples/histories/fig3-h1.txt | sed '1d')
echo "$metrics_out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["tool"] == "calcheck", doc
assert doc["elapsed_ns"] > 0, doc
m = doc["metrics"]
assert m["schema"] == "calgo.metrics/v1", m
for key in ("check.checks", "check.states", "check.memo_hits"):
    assert key in m["counters"], (key, m)
print("calcheck -metrics-json: valid %s document" % m["schema"])
'

echo "== calcheck -trace flight-recorder smoke =="
flight=$(go run ./cmd/calcheck -trace /dev/null -spec stack -object S -mode lin \
    examples/histories/stack-violation.txt 2>&1 >/dev/null || true)
case "$flight" in
*"flight recorder"*) echo "calcheck -trace: flight ring dumped on VIOLATION" ;;
*)
    echo "calcheck -trace did not dump a flight ring:" >&2
    echo "$flight" >&2
    exit 1
    ;;
esac

# Smoke the explainability path: on a known VIOLATION, -explain must
# render a timeline naming the first blocked operation, -dot must write
# a syntactically plausible DOT document, and -report must write a
# well-formed calgo.report/v1 JSON stamped with exit 1 — and the process
# must still exit 1.
echo "== calcheck -explain/-dot/-report smoke =="
explain_dir=$(mktemp -d)
trap 'rm -rf "$explain_dir"' EXIT
if go run ./cmd/calcheck -spec stack -object S -explain \
    -dot "$explain_dir/v.dot" -report "$explain_dir/v.json" \
    examples/histories/stack-violation.txt >"$explain_dir/v.out" 2>&1; then
    echo "calcheck on stack-violation.txt should exit 1" >&2
    exit 1
fi
grep -q "BLOCKED (first)" "$explain_dir/v.out" || {
    echo "-explain did not mark the first blocked operation:" >&2
    cat "$explain_dir/v.out" >&2
    exit 1
}
head -1 "$explain_dir/v.dot" | grep -q "^digraph" || {
    echo "-dot did not write a digraph:" >&2
    head -3 "$explain_dir/v.dot" >&2
    exit 1
}
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "calgo.report/v1", doc
assert doc["exit"] == 1, doc
runs = doc["runs"]
assert len(runs) == 1 and runs[0]["verdict"] == "VIOLATION", runs
assert "BLOCKED" in runs[0]["timeline"], runs
assert runs[0]["dot"].startswith("digraph"), runs
assert doc["metrics"]["schema"] == "calgo.metrics/v1", doc
assert doc["flight_total"] > 0 and len(doc["flight"]) > 0, doc
print("calcheck -explain/-dot/-report: VIOLATION evidence rendered, valid %s" % doc["schema"])
' "$explain_dir/v.json"

# Round-trip the report through cmd/calreport: the saved JSON must render
# as Markdown carrying the verdict and the timeline.
echo "== calreport round-trip smoke =="
go run ./cmd/calreport -o "$explain_dir/v.md" "$explain_dir/v.json"
grep -q "VIOLATION" "$explain_dir/v.md" && grep -q "BLOCKED" "$explain_dir/v.md" || {
    echo "calreport Markdown lost the violation evidence:" >&2
    head -20 "$explain_dir/v.md" >&2
    exit 1
}
echo "calreport: report JSON -> Markdown round-trip OK"

# Smoke the ops endpoint: calexplore under -serve must announce its
# address on stderr, serve parseable Prometheus exposition on /metrics
# (with the exploration's own counters) and a calgo.statusz/v1 document
# on /statusz. -serve-linger keeps the server up after the (fast)
# exploration finishes so the assertions race nothing.
echo "== calexplore -serve ops endpoint smoke =="
serve_log="$explain_dir/serve.log"
go run ./cmd/calexplore -target exchanger -values 3,4 -serve 127.0.0.1:0 -serve-linger 30s \
    >"$explain_dir/serve.out" 2>"$serve_log" &
serve_pid=$!
url=""
i=0
while [ $i -lt 150 ]; do
    url=$(sed -n 's/.*msg="ops server listening".*url=\(http:[^ ]*\).*/\1/p' "$serve_log" | head -1)
    [ -n "$url" ] && break
    sleep 0.2
    i=$((i + 1))
done
if [ -z "$url" ]; then
    echo "calexplore -serve never announced its address:" >&2
    cat "$serve_log" >&2
    exit 1
fi
python3 -c '
import json, sys, urllib.request
base = sys.argv[1].rstrip("/")
text = urllib.request.urlopen(base + "/metrics", timeout=10).read().decode()
assert "# TYPE calgo_sched_states_total counter" in text, text[:400]
assert "calgo_go_goroutines" in text, text[:400]
st = json.load(urllib.request.urlopen(base + "/statusz", timeout=10))
assert st["schema"] == "calgo.statusz/v1", st
assert st["tool"] == "calexplore", st
assert st["run"]["states"] > 0, st
print("ops endpoint: /metrics + /statusz OK (%d states explored)" % st["run"]["states"])
' "$url"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

# Smoke the perf-trajectory bookkeeping: the first -auto run seeds
# BENCH_<date>.json in the directory, the second auto-compares against
# it and prints the delta summary.
echo "== calbench -auto smoke =="
auto_dir="$explain_dir/bench"
go run ./cmd/calbench -dur 5ms -table queues -auto "$auto_dir" >"$explain_dir/auto1.out" 2>&1
bench_file="$auto_dir/BENCH_$(date -u +%Y-%m-%d).json"
if [ ! -f "$bench_file" ]; then
    echo "calbench -auto did not write $bench_file:" >&2
    ls "$auto_dir" >&2 || true
    exit 1
fi
auto2_out=$(go run ./cmd/calbench -dur 5ms -table queues -auto "$auto_dir" 2>&1)
case "$auto2_out" in
*"delta vs baseline"*) echo "calbench -auto: seeded trajectory, then auto-compared" ;;
*)
    echo "calbench -auto second run did not compare against the seeded baseline:" >&2
    echo "$auto2_out" >&2
    exit 1
    ;;
esac

# Smoke the perf-trajectory path warn-only: -compare against the
# committed baseline must parse it and print a delta summary. No -gate
# here — CI machines are too noisy to fail the build on throughput.
echo "== calbench -compare smoke (warn-only) =="
compare_out=$(go run ./cmd/calbench -dur 5ms -table exchangers -compare BENCH_2026-08-06.json)
case "$compare_out" in
*"delta vs baseline"*) echo "calbench -compare: delta summary printed" ;;
*)
    echo "calbench -compare did not print a delta summary:" >&2
    echo "$compare_out" >&2
    exit 1
    ;;
esac

echo "CI gate passed."
