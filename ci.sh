#!/bin/sh
# ci.sh — the repo's single verification gate (ROADMAP tier-1 and more):
# formatting, vet, build, the default test suite, and a race-detector
# pass. The extended chaos soak is tag-gated (make chaos) and not part of
# this gate; the race pass uses -short to skip the exhaustive model
# explorations, which dominate runtime even without the race detector.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race -short ./... =="
go test -race -short ./...

# The parallel engine and the batch checker are the two packages whose
# correctness depends on cross-goroutine coordination; run their full
# (non-short) suites under the race detector.
echo "== go test -race ./internal/sched/ ./internal/check/ =="
go test -race ./internal/sched/ ./internal/check/

# Smoke the CLI path of the work-stealing engine: the F1 exchanger
# battery at full parallelism must verify cleanly (exit 0). -parallel is
# the deprecated alias of -workers and must keep working.
echo "== calexplore -parallel smoke =="
workers=$( (nproc || echo 4) 2>/dev/null )
if go run ./cmd/calexplore -target exchanger -values 3,4,7 -parallel "$workers"; then
    echo "calexplore -parallel $workers: OK"
else
    echo "calexplore -parallel $workers failed" >&2
    exit 1
fi

# Smoke the observability path: calcheck -metrics-json must emit a valid
# calgo.metrics/v1 document with the core search counters, and -trace
# must dump a non-empty flight-recorder ring on a VIOLATION.
echo "== calcheck -metrics-json smoke =="
metrics_out=$(go run ./cmd/calcheck -metrics-json - -spec exchanger -mode cal examples/histories/fig3-h1.txt | sed '1d')
echo "$metrics_out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["tool"] == "calcheck", doc
assert doc["elapsed_ns"] > 0, doc
m = doc["metrics"]
assert m["schema"] == "calgo.metrics/v1", m
for key in ("check.checks", "check.states", "check.memo_hits"):
    assert key in m["counters"], (key, m)
print("calcheck -metrics-json: valid %s document" % m["schema"])
'

echo "== calcheck -trace flight-recorder smoke =="
flight=$(go run ./cmd/calcheck -trace /dev/null -spec stack -object S -mode lin \
    examples/histories/stack-violation.txt 2>&1 >/dev/null || true)
case "$flight" in
*"flight recorder"*) echo "calcheck -trace: flight ring dumped on VIOLATION" ;;
*)
    echo "calcheck -trace did not dump a flight ring:" >&2
    echo "$flight" >&2
    exit 1
    ;;
esac

echo "CI gate passed."
