#!/bin/sh
# ci.sh — the repo's single verification gate (ROADMAP tier-1 and more):
# formatting, vet, build, the default test suite, and a race-detector
# pass. The extended chaos soak is tag-gated (make chaos) and not part of
# this gate; the race pass uses -short to skip the exhaustive model
# explorations, which dominate runtime even without the race detector.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race -short ./... =="
go test -race -short ./...

# The parallel engine, the batch checker, the daemon's job queue, the
# specialized monitors and the run-history store are the packages whose
# correctness depends on cross-goroutine coordination (the monitors via
# the checker's engine dispatch and the cross-validation harness, the
# store via concurrent Put/List and crash-replay); run their full
# (non-short) suites under the race detector.
echo "== go test -race ./internal/sched/ ./internal/check/ ./internal/jobs/ ./internal/monitor/ ./internal/runstore/ =="
go test -race ./internal/sched/ ./internal/check/ ./internal/jobs/ ./internal/monitor/ ./internal/runstore/

# Guard the deprecation sweep: the context-first API is the only one,
# and none of the deleted legacy symbols may reappear in Go sources.
echo "== deprecated-symbol guard =="
if grep -rn "CALContext\|LinearizableContext\|WithWorkers\|ExploreOptions\|AliasWorkers" \
    --include="*.go" .; then
    echo "deleted deprecated symbols reappeared (see matches above)" >&2
    exit 1
fi
echo "deprecated symbols absent from Go sources"

# Smoke the CLI path of the work-stealing engine: the F1 exchanger
# battery at full parallelism must verify cleanly (exit 0).
echo "== calexplore -workers smoke =="
workers=$( (nproc || echo 4) 2>/dev/null )
if go run ./cmd/calexplore -target exchanger -values 3,4,7 -workers "$workers"; then
    echo "calexplore -workers $workers: OK"
else
    echo "calexplore -workers $workers failed" >&2
    exit 1
fi

# Smoke the observability path: calcheck -metrics-json must emit a valid
# calgo.metrics/v1 document with the core search counters, and -trace
# must dump a non-empty flight-recorder ring on a VIOLATION.
echo "== calcheck -metrics-json smoke =="
metrics_out=$(go run ./cmd/calcheck -metrics-json - -spec exchanger -mode cal examples/histories/fig3-h1.txt | sed '1d')
echo "$metrics_out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["tool"] == "calcheck", doc
assert doc["elapsed_ns"] > 0, doc
m = doc["metrics"]
assert m["schema"] == "calgo.metrics/v1", m
for key in ("check.checks", "check.states", "check.memo_hits"):
    assert key in m["counters"], (key, m)
print("calcheck -metrics-json: valid %s document" % m["schema"])
'

echo "== calcheck -trace flight-recorder smoke =="
flight=$(go run ./cmd/calcheck -trace /dev/null -spec stack -object S -mode lin \
    examples/histories/stack-violation.txt 2>&1 >/dev/null || true)
case "$flight" in
*"flight recorder"*) echo "calcheck -trace: flight ring dumped on VIOLATION" ;;
*)
    echo "calcheck -trace did not dump a flight ring:" >&2
    echo "$flight" >&2
    exit 1
    ;;
esac

# Smoke the explainability path: on a known VIOLATION, -explain must
# render a timeline naming the first blocked operation, -dot must write
# a syntactically plausible DOT document, and -report must write a
# well-formed calgo.report/v1 JSON stamped with exit 1 — and the process
# must still exit 1.
echo "== calcheck -explain/-dot/-report smoke =="
explain_dir=$(mktemp -d)
trap 'rm -rf "$explain_dir"' EXIT
if go run ./cmd/calcheck -spec stack -object S -explain \
    -dot "$explain_dir/v.dot" -report "$explain_dir/v.json" \
    examples/histories/stack-violation.txt >"$explain_dir/v.out" 2>&1; then
    echo "calcheck on stack-violation.txt should exit 1" >&2
    exit 1
fi
grep -q "BLOCKED (first)" "$explain_dir/v.out" || {
    echo "-explain did not mark the first blocked operation:" >&2
    cat "$explain_dir/v.out" >&2
    exit 1
}
head -1 "$explain_dir/v.dot" | grep -q "^digraph" || {
    echo "-dot did not write a digraph:" >&2
    head -3 "$explain_dir/v.dot" >&2
    exit 1
}
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "calgo.report/v1", doc
assert doc["exit"] == 1, doc
runs = doc["runs"]
assert len(runs) == 1 and runs[0]["verdict"] == "VIOLATION", runs
assert "BLOCKED" in runs[0]["timeline"], runs
assert runs[0]["dot"].startswith("digraph"), runs
assert doc["metrics"]["schema"] == "calgo.metrics/v1", doc
assert doc["flight_total"] > 0 and len(doc["flight"]) > 0, doc
print("calcheck -explain/-dot/-report: VIOLATION evidence rendered, valid %s" % doc["schema"])
' "$explain_dir/v.json"

# Round-trip the report through cmd/calreport: the saved JSON must render
# as Markdown carrying the verdict and the timeline.
echo "== calreport round-trip smoke =="
go run ./cmd/calreport -o "$explain_dir/v.md" "$explain_dir/v.json"
grep -q "VIOLATION" "$explain_dir/v.md" && grep -q "BLOCKED" "$explain_dir/v.md" || {
    echo "calreport Markdown lost the violation evidence:" >&2
    head -20 "$explain_dir/v.md" >&2
    exit 1
}
echo "calreport: report JSON -> Markdown round-trip OK"

# Smoke the specialized-monitor fast path: under -engine auto the
# unambiguous queue/stack examples must be decided by the O(n log n)
# monitor (the dispatch counter moves) with unchanged verdicts — the
# known-Sat histories exit 0, the known violations exit 1 with a
# monitor-attributed reason. The Sat queue run also serves /metrics to
# pin the Prometheus spelling, calgo_monitor_dispatch_total.
echo "== calcheck -engine auto monitor smoke =="
mon_log="$explain_dir/mon-serve.log"
go run ./cmd/calcheck -spec queue -object Q -engine auto \
    -serve 127.0.0.1:0 -serve-linger 30s \
    examples/histories/queue-fifo.txt >"$explain_dir/mon-sat.out" 2>"$mon_log" &
mon_pid=$!
url=""
i=0
while [ $i -lt 150 ]; do
    url=$(sed -n 's/.*msg="ops server listening".*url=\(http:[^ ]*\).*/\1/p' "$mon_log" | head -1)
    [ -n "$url" ] && break
    sleep 0.2
    i=$((i + 1))
done
if [ -z "$url" ]; then
    echo "calcheck -serve never announced its address:" >&2
    cat "$mon_log" >&2
    exit 1
fi
python3 -c '
import sys, urllib.request
text = urllib.request.urlopen(sys.argv[1].rstrip("/") + "/metrics", timeout=10).read().decode()
for line in text.splitlines():
    if line.startswith("calgo_monitor_dispatch_total "):
        assert float(line.split()[1]) >= 1, line
        break
else:
    raise AssertionError("calgo_monitor_dispatch_total missing from /metrics")
print("monitor fast path: calgo_monitor_dispatch_total >= 1 on the Sat queue history")
' "$url"
kill "$mon_pid" 2>/dev/null || true
wait "$mon_pid" 2>/dev/null || true
grep -q "^OK" "$explain_dir/mon-sat.out" || {
    echo "queue-fifo.txt under -engine auto did not report OK:" >&2
    cat "$explain_dir/mon-sat.out" >&2
    exit 1
}
go run ./cmd/calcheck -spec stack -object S -engine auto \
    -metrics-json "$explain_dir/mon-stack-sat.json" examples/histories/stack-lifo.txt >/dev/null
for mon_case in "queue Q queue-violation" "stack S stack-violation"; do
    set -- $mon_case
    mon_json="$explain_dir/mon-$1-vio.json"
    if go run ./cmd/calcheck -spec "$1" -object "$2" -engine auto \
        -metrics-json "$mon_json" "examples/histories/$3.txt" >"$explain_dir/mon-vio.out" 2>&1; then
        echo "$3.txt under -engine auto should exit 1" >&2
        exit 1
    fi
    grep -q "monitor:" "$explain_dir/mon-vio.out" || {
        echo "$3.txt violation was not attributed to the monitor:" >&2
        cat "$explain_dir/mon-vio.out" >&2
        exit 1
    }
done
python3 -c '
import json, sys
for path in sys.argv[1:]:
    c = json.load(open(path))["metrics"]["counters"]
    assert c.get("monitor.dispatch", 0) >= 1, (path, c)
    assert c.get("monitor.fallback", 0) == 0, (path, c)
print("monitor fast path: %d runs all dispatched, zero DFS fallbacks" % len(sys.argv[1:]))
' "$explain_dir/mon-stack-sat.json" "$explain_dir/mon-queue-vio.json" "$explain_dir/mon-stack-vio.json"

# Smoke the ops endpoint: calexplore under -serve must announce its
# address on stderr, serve parseable Prometheus exposition on /metrics
# (with the exploration's own counters) and a calgo.statusz/v1 document
# on /statusz. -serve-linger keeps the server up after the (fast)
# exploration finishes so the assertions race nothing.
echo "== calexplore -serve ops endpoint smoke =="
serve_log="$explain_dir/serve.log"
go run ./cmd/calexplore -target exchanger -values 3,4 -serve 127.0.0.1:0 -serve-linger 30s \
    >"$explain_dir/serve.out" 2>"$serve_log" &
serve_pid=$!
url=""
i=0
while [ $i -lt 150 ]; do
    url=$(sed -n 's/.*msg="ops server listening".*url=\(http:[^ ]*\).*/\1/p' "$serve_log" | head -1)
    [ -n "$url" ] && break
    sleep 0.2
    i=$((i + 1))
done
if [ -z "$url" ]; then
    echo "calexplore -serve never announced its address:" >&2
    cat "$serve_log" >&2
    exit 1
fi
python3 -c '
import json, sys, urllib.request
base = sys.argv[1].rstrip("/")
text = urllib.request.urlopen(base + "/metrics", timeout=10).read().decode()
assert "# TYPE calgo_sched_states_total counter" in text, text[:400]
assert "calgo_go_goroutines" in text, text[:400]
st = json.load(urllib.request.urlopen(base + "/statusz", timeout=10))
assert st["schema"] == "calgo.statusz/v1", st
assert st["tool"] == "calexplore", st
assert st["run"]["states"] > 0, st
print("ops endpoint: /metrics + /statusz OK (%d states explored)" % st["run"]["states"])
' "$url"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

# Smoke the perf-trajectory bookkeeping: the first -auto run seeds
# BENCH_<date>.json in the directory, the second auto-compares against
# it and prints the delta summary.
echo "== calbench -auto smoke =="
auto_dir="$explain_dir/bench"
go run ./cmd/calbench -dur 5ms -table queues -auto "$auto_dir" >"$explain_dir/auto1.out" 2>&1
bench_file="$auto_dir/BENCH_$(date -u +%Y-%m-%d).json"
if [ ! -f "$bench_file" ]; then
    echo "calbench -auto did not write $bench_file:" >&2
    ls "$auto_dir" >&2 || true
    exit 1
fi
auto2_out=$(go run ./cmd/calbench -dur 5ms -table queues -auto "$auto_dir" 2>&1)
case "$auto2_out" in
*"delta vs baseline"*) echo "calbench -auto: seeded trajectory, then auto-compared" ;;
*)
    echo "calbench -auto second run did not compare against the seeded baseline:" >&2
    echo "$auto2_out" >&2
    exit 1
    ;;
esac

# Both -auto runs also recorded trajectory points in the run-history
# store living in the -auto directory; a regression query over it must
# name two distinct records and reproduce every per-cell delta from the
# stored rates.
go run ./cmd/calreport -store "$auto_dir" -query "regressions" \
    -o "$explain_dir/auto-query.json"
python3 -c '
import json, sys
res = json.load(open(sys.argv[1]))
assert res["schema"] == "calgo.query/v1", res
assert res["mode"] == "regressions", res
assert res["current_id"] != res["baseline_id"], res
deltas = res.get("deltas") or []
assert deltas, "regression query over two -auto runs returned no cells"
for d in deltas:
    want = (d["cur_ops_per_sec"] - d["base_ops_per_sec"]) / d["base_ops_per_sec"] * 100
    assert abs(d["delta_pct"] - want) < 1e-9, d
assert all(d["table"] == "B7" for d in deltas), deltas
print("run store: %s vs %s, %d B7 cell deltas consistent"
      % (res["current_id"], res["baseline_id"], len(deltas)))
' "$explain_dir/auto-query.json"

# Smoke the perf-trajectory path warn-only: -compare against the
# committed baseline must parse it and print a delta summary. No -gate
# here — CI machines are too noisy to fail the build on throughput.
echo "== calbench -compare smoke (warn-only) =="
compare_out=$(go run ./cmd/calbench -dur 5ms -table exchangers -compare BENCH_2026-08-06.json)
case "$compare_out" in
*"delta vs baseline"*) echo "calbench -compare: delta summary printed" ;;
*)
    echo "calbench -compare did not print a delta summary:" >&2
    echo "$compare_out" >&2
    exit 1
    ;;
esac

# The committed trajectory files are the ground truth for the query
# layer: ingest both into a fresh store (calreport does this on open)
# and assert the regression query reproduces every per-cell delta an
# independent recomputation of the two JSON documents yields.
echo "== run-history store query smoke (committed trajectories) =="
store_dir="$explain_dir/runstore"
mkdir -p "$store_dir"
cp BENCH_2026-08-06.json BENCH_2026-08-08.json "$store_dir/"
go run ./cmd/calreport -store "$store_dir" -query "regressions" \
    -o "$explain_dir/committed-query.json"
check_committed_deltas() {
    # $1: calgo.query/v1 JSON path; $2: label for the success line.
    python3 -c '
import json, sys

def cells(path):
    doc = json.load(open(path))
    out = {}
    for t in doc["tables"]:
        for r in t["rows"]:
            for i, c in enumerate(t["columns"]):
                if i < len(r["ops_per_sec"]):
                    out[(t["id"], r["name"], c)] = r["ops_per_sec"][i]
    return out

base, cur = cells("BENCH_2026-08-06.json"), cells("BENCH_2026-08-08.json")
want = {k: (cur[k] - base[k]) / base[k] * 100
        for k in base if k in cur and base[k] > 0}

res = json.load(open(sys.argv[1]))
assert res["schema"] == "calgo.query/v1", res
assert res["baseline_id"] == "bench-BENCH_2026-08-06", res
assert res["current_id"] == "bench-BENCH_2026-08-08", res
got = {(d["table"], d["row"], d["column"]): d["delta_pct"]
       for d in res.get("deltas") or []}
assert set(got) == set(want), (set(got) ^ set(want))
for k, pct in want.items():
    assert abs(got[k] - pct) < 1e-9, (k, got[k], pct)
pcts = [d["delta_pct"] for d in res["deltas"]]
assert pcts == sorted(pcts), "deltas not worst-first"
print("%s: %d per-cell deltas match the committed trajectories exactly"
      % (sys.argv[2], len(want)))
' "$1" "$2"
}
check_committed_deltas "$explain_dir/committed-query.json" "calreport -query"

# Smoke the checking daemon end to end: build cald under the race
# detector, round-trip a history through calcheck -remote, prove the
# verdict cache short-circuits a resubmission (hit counter up on
# /metrics, no second search on /runsz), exercise 429 shedding + client
# backoff, then SIGTERM the daemon mid-search and assert the journal
# resumes the still-pending job in a fresh instance.
echo "== cald daemon smoke =="
go build -race -o "$explain_dir/cald" ./cmd/cald
go build -o "$explain_dir/calcheck" ./cmd/calcheck

start_cald() {
    # $1: log file; remaining args: extra cald flags.
    # Sets cald_pid and cald_url.
    cald_log="$1"
    shift
    "$explain_dir/cald" -addr 127.0.0.1:0 "$@" >"$cald_log" 2>&1 &
    cald_pid=$!
    cald_url=""
    i=0
    while [ $i -lt 150 ]; do
        cald_url=$(sed -n 's/.*msg="cald serving".*url=\(http:[^ ]*\).*/\1/p' "$cald_log" | head -1)
        [ -n "$cald_url" ] && break
        sleep 0.2
        i=$((i + 1))
    done
    if [ -z "$cald_url" ]; then
        echo "cald never announced its address:" >&2
        cat "$cald_log" >&2
        exit 1
    fi
}

# Instance 1: single worker with a journal and a durable run-history
# store (instance 3 reopens both); -drain 1s keeps the SIGTERM step
# below fast.
start_cald "$explain_dir/cald1.log" -journal "$explain_dir/cald.journal" \
    -store "$explain_dir/caldstore" \
    -workers 1 -queue-depth 8 -drain 1s
url1="$cald_url"
pid1="$cald_pid"

# 1. Round trip: the remote verdict must match the local one (exit 0).
"$explain_dir/calcheck" -remote "$url1" -spec exchanger examples/histories/fig3-h1.txt

# 2. Resubmit the same history: the verdict must come from the cache
#    (thread renaming aside, the canonicalized fingerprint matches) and
#    the daemon must not run a second search.
second=$("$explain_dir/calcheck" -remote "$url1" -spec exchanger examples/histories/fig3-h1.txt)
case "$second" in
*cached*) : ;;
*)
    echo "resubmission was not served from the verdict cache:" >&2
    echo "$second" >&2
    exit 1
    ;;
esac
python3 -c '
import json, sys, urllib.request
base = sys.argv[1].rstrip("/")
text = urllib.request.urlopen(base + "/metrics", timeout=10).read().decode()
for line in text.splitlines():
    if line.startswith("calgo_jobs_cache_hits_total "):
        assert float(line.split()[1]) >= 1, line
        break
else:
    raise AssertionError("calgo_jobs_cache_hits_total missing from /metrics")
runs = json.load(urllib.request.urlopen(base + "/runsz", timeout=10))
assert len(runs) == 1, "want exactly 1 executed search on /runsz, got %d" % len(runs)
rec = runs[0]
assert rec["schema"] == "calgo.run/v1", rec
assert rec["tool"] == "cald" and rec["verdict"] == "OK", rec
assert rec["labels"]["spec"] == "exchanger", rec
print("verdict cache: hit counted, no second search (1 record on /runsz)")
' "$url1"

# 3. Admission control: a burst-1 instance sheds the second submission
#    with 429 + Retry-After; the client backs off, retries and
#    succeeds (exit 0 for both histories).
start_cald "$explain_dir/cald2.log" -rate 1 -burst 1
url2="$cald_url"
pid2="$cald_pid"
retry_log="$explain_dir/remote-retry.log"
"$explain_dir/calcheck" -remote "$url2" -spec exchanger \
    examples/histories/fig3-h1.txt examples/histories/fig3-h1.txt 2>"$retry_log"
if ! grep -q "backing off" "$retry_log"; then
    echo "throttled submission never hit the 429 backoff path:" >&2
    cat "$retry_log" >&2
    exit 1
fi
echo "rate limit: 429 absorbed with backoff, retry succeeded"
kill -TERM "$pid2"
wait "$pid2"

# 4. Crash-safe drain: occupy the single worker with an adversarial
#    search (last exchange response is wrong, so the checker must
#    exhaust the space), queue a fast job behind it, SIGTERM. The
#    daemon cancels the running search at the -drain deadline, journals
#    the pending job and exits 0; a fresh instance on the same journal
#    resumes and finishes it.
pending_id=$(python3 -c '
import json, sys, time, urllib.request
base = sys.argv[1].rstrip("/")

def post(req):
    r = urllib.request.Request(base + "/jobs", data=json.dumps(req).encode(),
                               headers={"Content-Type": "application/json"})
    return json.load(urllib.request.urlopen(r, timeout=10))

def get(id):
    return json.load(urllib.request.urlopen(base + "/jobs/" + id, timeout=10))

n = 18
lines = []
for i in range(n):
    lines += ["inv t%d E.exchange %d" % (2*i+1, 10*i+1),
              "inv t%d E.exchange %d" % (2*i+2, 10*i+2)]
for i in range(n):
    a, b = 10*i+2, 10*i+1
    if i == n - 1:
        b = 99999
    lines += ["res t%d E.exchange (true,%d)" % (2*i+1, a),
              "res t%d E.exchange (true,%d)" % (2*i+2, b)]
slow = post({"spec": "exchanger", "history": "\n".join(lines) + "\n"})
deadline = time.time() + 60
while get(slow["id"])["state"] != "running":
    assert time.time() < deadline, "slow job never started"
    time.sleep(0.1)
fast = post({"spec": "exchanger", "history":
             "inv t1 E.exchange 3\ninv t2 E.exchange 4\n"
             "res t1 E.exchange (true,4)\nres t2 E.exchange (true,3)\n"})
assert get(fast["id"])["state"] == "pending", get(fast["id"])
print(fast["id"])
' "$url1")
kill -TERM "$pid1"
if ! wait "$pid1"; then
    echo "cald did not exit 0 after SIGTERM:" >&2
    tail -20 "$explain_dir/cald1.log" >&2
    exit 1
fi
if ! grep -q "drained with pending jobs journaled" "$explain_dir/cald1.log"; then
    echo "cald drain did not journal the pending job:" >&2
    tail -20 "$explain_dir/cald1.log" >&2
    exit 1
fi

start_cald "$explain_dir/cald3.log" -journal "$explain_dir/cald.journal" \
    -store "$explain_dir/caldstore" -workers 1
url3="$cald_url"
pid3="$cald_pid"
python3 -c '
import json, sys, time, urllib.request
base, id = sys.argv[1].rstrip("/"), sys.argv[2]
deadline = time.time() + 60
while True:
    j = json.load(urllib.request.urlopen(base + "/jobs/" + id, timeout=10))
    if j["state"] in ("done", "canceled"):
        break
    assert time.time() < deadline, j
    time.sleep(0.1)
assert j.get("resumed"), "job was not marked resumed: %r" % j
assert j["verdict"] == "OK", j
print("journal resume: %s finished %s after restart" % (id, j["verdict"]))
' "$url3" "$pending_id"

# The restarted instance must also serve the verdict instance 1
# recorded: the pre-restart record (r-1, spec=exchanger) is answerable
# on /runsz and /queryz from the reopened store, no journal involved.
python3 -c '
import json, sys, urllib.request
base = sys.argv[1].rstrip("/")
runs = json.load(urllib.request.urlopen(
    base + "/runsz?tool=cald&label=spec:exchanger", timeout=10))
pre = [r for r in runs if r["id"] == "r-1"]
assert pre, "pre-restart record r-1 missing from /runsz: %r" % [r["id"] for r in runs]
assert pre[0]["verdict"] == "OK" and pre[0]["labels"]["mode"] == "cal", pre[0]
res = json.load(urllib.request.urlopen(base + "/queryz?tool=cald", timeout=10))
assert res["schema"] == "calgo.query/v1" and res["total"] >= 1, res
assert any(r["id"] == "r-1" for r in res["runs"]), res
print("run store: pre-restart verdict r-1 served after restart (%d records)" % len(runs))
' "$url3"
kill -TERM "$pid3"
wait "$pid3"
echo "cald smoke: round trip, cache hit, 429 backoff, drain + journal resume + durable run history"

# Smoke the streaming API end to end under the race detector: open a
# stream against cald with a tiny fallback window, watch it over SSE
# while feeding a long pristine prefix (forcing the decided prefix to be
# shed) and then a known queue defect. The SSE watcher must deliver
# VIOLATION-at-event-k at the exact defect index, and /metrics must
# expose the shedding as calgo_stream_shed_total > 0.
echo "== cald /streams SSE smoke =="
start_cald "$explain_dir/cald4.log" -stream-window 32 -stream-check-every 8
url4="$cald_url"
pid4="$cald_pid"
python3 -c '
import json, sys, threading, urllib.request
base = sys.argv[1].rstrip("/")

req = urllib.request.Request(base + "/streams",
                             data=json.dumps({"spec": "queue"}).encode(),
                             headers={"Content-Type": "application/json"})
doc = json.load(urllib.request.urlopen(req, timeout=10))
sid = doc["id"]
assert doc["schema"] == "calgo.stream/v1" and doc["state"] == "open", doc

hit, done = {}, threading.Event()
def watch():
    resp = urllib.request.urlopen(base + "/streams/" + sid + "?watch=1", timeout=60)
    assert resp.headers.get("Content-Type") == "text/event-stream", resp.headers
    for raw in resp:
        line = raw.decode().strip()
        if not line.startswith("data: "):
            continue
        fr = json.loads(line[6:])
        if fr["verdict"]["status"] == "violation":
            hit.update(fr["verdict"])
            done.set()
            return
t = threading.Thread(target=watch, daemon=True)
t.start()

def feed(lines):
    req = urllib.request.Request(base + "/streams/" + sid + "/events",
                                 data=("\n".join(lines) + "\n").encode())
    return json.load(urllib.request.urlopen(req, timeout=30))

# 40 balanced enq/deq cycles: 160 pristine events, far past the 32-event
# window, so the decided prefix must be shed. Then one bad dequeue.
pristine = []
for i in range(40):
    pristine += ["inv t1 E.enq %d" % i, "res t1 E.enq true",
                 "inv t1 E.deq ()", "res t1 E.deq (true,%d)" % i]
mid = feed(pristine)
assert mid["verdict"]["status"] == "sat-so-far", mid["verdict"]
assert mid["verdict"]["shed"] > 0, "no shedding despite window 32: %r" % mid["verdict"]
feed(["inv t1 E.enq 40", "res t1 E.enq true",
      "inv t1 E.deq ()", "res t1 E.deq (true,99999)"])

assert done.wait(30), "violation frame never arrived over SSE"
assert hit["at_event"] == 163, "at_event = %r, want the exact defect index 163" % hit
assert hit["display"].startswith("VIOLATION-at-event-163"), hit
assert hit["engine"] == "monitor:queue", hit

text = urllib.request.urlopen(base + "/metrics", timeout=10).read().decode()
for line in text.splitlines():
    if line.startswith("calgo_stream_shed_total "):
        assert float(line.split()[1]) > 0, line
        break
else:
    raise AssertionError("calgo_stream_shed_total missing from /metrics")
print("streaming smoke: VIOLATION-at-event-163 over SSE, shed prefix counted on /metrics")
' "$url4"
kill -TERM "$pid4"
wait "$pid4"

# The same committed-trajectory regression must be answerable over HTTP:
# point a cald at the store the calreport smoke ingested and ask /queryz
# for the identical calgo.query/v1 document (plus an HTML rendering for
# browsers).
echo "== cald /queryz smoke (committed trajectories) =="
start_cald "$explain_dir/cald5.log" -store "$store_dir"
url5="$cald_url"
pid5="$cald_pid"
python3 -c '
import sys, urllib.request
base = sys.argv[1].rstrip("/")
open(sys.argv[2], "wb").write(
    urllib.request.urlopen(base + "/queryz?mode=regressions", timeout=10).read())
html = urllib.request.urlopen(base + "/queryz?mode=regressions&format=html",
                              timeout=10).read().decode()
assert "<table>" in html and "bench-BENCH_2026-08-06" in html, html[:400]
' "$url5" "$explain_dir/queryz.json"
check_committed_deltas "$explain_dir/queryz.json" "/queryz"
kill -TERM "$pid5"
wait "$pid5"

# Smoke the fleet observability plane end to end: two race-built cald
# daemons with distinct durable stores, each seeded with a two-point
# bench trajectory over the calgo.storeapi/v1 remote-store protocol
# (calbench -auto against the daemon URL — no local files involved).
# A federated calreport regression query must merge both shards
# worst-first with per-cell origin labels; a third daemon started with
# -fleet must answer the same question on /queryz?fleet=1. Then one
# shard dies: the fleet answer must flip to degraded:true and still
# carry the surviving shard's rows with exact origin attribution.
echo "== fleet federation smoke =="
start_cald "$explain_dir/fleet-a.log" -store "$explain_dir/fleet-a"
url_a="$cald_url"
pid_a="$cald_pid"
start_cald "$explain_dir/fleet-b.log" -store "$explain_dir/fleet-b"
url_b="$cald_url"
pid_b="$cald_pid"
for u in "$url_a" "$url_b"; do
    go run ./cmd/calbench -dur 5ms -table queues -auto "$u" >/dev/null 2>&1
    seed2=$(go run ./cmd/calbench -dur 5ms -table queues -auto "$u" 2>&1)
    case "$seed2" in
    *"delta vs baseline"*) : ;;
    *)
        echo "calbench -auto $u did not resolve its baseline from the daemon:" >&2
        echo "$seed2" >&2
        exit 1
        ;;
    esac
done
echo "calbench -auto: both shards seeded over calgo.storeapi/v1, remote baselines resolved"

start_cald "$explain_dir/fleet-c.log" -fleet "$url_a,$url_b"
url_c="$cald_url"
pid_c="$cald_pid"

go run ./cmd/calreport -store "$url_a,$url_b" -query "regressions" \
    -o "$explain_dir/fleet.json"
python3 -c '
import json, sys, urllib.request
from urllib.parse import urlparse

def check_merged(res, hosts):
    assert res["schema"] == "calgo.query/v1" and res["mode"] == "regressions", res
    assert not res.get("degraded"), res
    targets = res["targets"]
    assert {t["target"] for t in targets} == hosts, targets
    assert all(not t.get("error") for t in targets), targets
    deltas = res.get("deltas") or []
    assert {d["origin"] for d in deltas} == hosts, deltas
    pcts = [d["delta_pct"] for d in deltas]
    assert pcts == sorted(pcts), "fleet deltas not worst-first"
    return len(deltas)

hosts = {urlparse(u).netloc for u in sys.argv[2:4]}
n = check_merged(json.load(open(sys.argv[1])), hosts)
fleet_url = sys.argv[4].rstrip("/") + "/queryz?fleet=1&mode=regressions"
m = check_merged(json.load(urllib.request.urlopen(fleet_url, timeout=30)), hosts)
print("fleet rollup: %d (calreport) / %d (/queryz?fleet=1) deltas merged "
      "worst-first from %s" % (n, m, ", ".join(sorted(hosts))))
' "$explain_dir/fleet.json" "$url_a" "$url_b" "$url_c"

# Kill shard b: the same questions must now degrade honestly instead of
# failing — partial rows from a, an error attributed to b.
kill -TERM "$pid_b"
wait "$pid_b"
degraded_txt=$(go run ./cmd/calreport -store "$url_a,$url_b" -query "regressions")
case "$degraded_txt" in
*"DEGRADED"*) : ;;
*)
    echo "federated query with a dead shard did not render DEGRADED:" >&2
    echo "$degraded_txt" >&2
    exit 1
    ;;
esac
go run ./cmd/calreport -store "$url_a,$url_b" -query "regressions" \
    -o "$explain_dir/fleet-degraded.json"
python3 -c '
import json, sys, urllib.request
from urllib.parse import urlparse

def check_degraded(res, live, dead):
    assert res.get("degraded") is True, res
    tmap = {t["target"]: t for t in res["targets"]}
    assert set(tmap) == {live, dead}, tmap
    assert tmap[dead].get("error"), "dead shard has no attributed error: %r" % tmap
    assert not tmap[live].get("error"), tmap
    deltas = res.get("deltas") or []
    assert deltas and all(d["origin"] == live for d in deltas), deltas
    return len(deltas)

live, dead = (urlparse(u).netloc for u in sys.argv[2:4])
n = check_degraded(json.load(open(sys.argv[1])), live, dead)
fleet_url = sys.argv[4].rstrip("/") + "/queryz?fleet=1&mode=regressions"
m = check_degraded(json.load(urllib.request.urlopen(fleet_url, timeout=60)), live, dead)
print("fleet degradation: %d/%d surviving rows, all origin=%s, error pinned on %s"
      % (n, m, live, dead))
' "$explain_dir/fleet-degraded.json" "$url_a" "$url_b" "$url_c"
kill -TERM "$pid_c"
wait "$pid_c"
kill -TERM "$pid_a"
wait "$pid_a"
echo "fleet smoke: merged rollup, /queryz?fleet=1, degraded partial results"

# Smoke the retention policy on a live daemon: reopen a store that
# already holds two bench trajectory points under keep-bench 1 with a
# 1s sweep interval, and watch calgo_runstore_expired_total move on
# /metrics (the sweep is the same crash-safe tombstone path the unit
# tests pin).
echo "== cald retention smoke =="
ret_dir="$explain_dir/retstore"
cp -r "$store_dir" "$ret_dir"
start_cald "$explain_dir/cald-ret.log" -store "$ret_dir" \
    -retention-keep-bench 1 -retention-interval 1s
python3 -c '
import sys, time, urllib.request
base = sys.argv[1].rstrip("/")
deadline = time.time() + 30
while True:
    text = urllib.request.urlopen(base + "/metrics", timeout=10).read().decode()
    expired = {line.split()[0]: float(line.split()[1]) for line in text.splitlines()
               if line.startswith("calgo_runstore_")}
    if expired.get("calgo_runstore_expired_total", 0) >= 1:
        assert expired.get("calgo_runstore_retained", 0) >= 1, expired
        break
    assert time.time() < deadline, "retention sweep never expired anything: %r" % expired
    time.sleep(0.5)
print("retention: calgo_runstore_expired_total = %d, retained gauge = %d"
      % (expired["calgo_runstore_expired_total"], expired["calgo_runstore_retained"]))
' "$cald_url"
kill -TERM "$cald_pid"
wait "$cald_pid"

echo "CI gate passed."
